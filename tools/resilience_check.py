#!/usr/bin/env python
"""Crash-safe resume acceptance check: SIGKILL a campaign, resume it.

The end-to-end gate behind ``--resume`` (docs/INTERNALS.md §16), run by
CI's ``resilience`` step::

    PYTHONPATH=src python tools/resilience_check.py --workdir ci-resilience

1. launch ``python -m repro table4 --record --store-dir ...`` as a
   subprocess;
2. poll its flight-recorder manifest until at least ``--min-done``
   cells have committed, then SIGKILL the process — a real crash, no
   cleanup handlers;
3. re-run the same campaign with ``--resume`` pointing at the orphaned
   manifest and ``--stats-json``;
4. assert the resumed run (a) exits 0, (b) partitioned exactly the
   done cells the manifest recorded, and (c) re-simulated **none** of
   them — every done cell came back as a store hit under its original
   fingerprint (the write-ahead ordering the engine guarantees when a
   recorder is attached).

Exit status 0 = gate passed.  Both manifests are left in the workdir
for upload as CI artifacts.
"""

from __future__ import annotations

import argparse
import json
import signal
import subprocess
import sys
import time
from pathlib import Path

SRC_DIR = str(Path(__file__).resolve().parent.parent / "src")

#: A campaign long enough that the kill lands mid-batch on CI runners.
BENCHMARKS = ["db", "jess", "javac", "mtrt"]
SCHEMES = 3  # run_suite's baseline/bbv/hotspot grid


def campaign_command(args, flight_dir: Path, store_dir: Path) -> list:
    return [
        sys.executable, "-m", "repro", "table4",
        "--benchmarks", *BENCHMARKS,
        "--instructions", str(args.instructions),
        "--record", str(flight_dir),
        "--store-dir", str(store_dir),
    ]


def manifest_in(flight_dir: Path) -> Path:
    manifests = sorted(flight_dir.glob("*.jsonl"))
    if not manifests:
        raise SystemExit(f"no manifest appeared under {flight_dir}")
    return max(manifests, key=lambda p: p.stat().st_mtime)


def count_done_cells(manifest: Path) -> int:
    done = set()
    for line in manifest.read_bytes().splitlines():
        try:
            record = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            continue  # torn tail of the killed writer
        if record.get("kind") == "cell" and record.get("status") == "ok":
            done.add(
                (
                    record.get("benchmark"),
                    record.get("scheme"),
                    record.get("fingerprint"),
                )
            )
    return len(done)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workdir", default="ci-resilience", metavar="DIR",
        help="scratch directory for store, manifests, stats (kept for "
        "artifact upload)",
    )
    parser.add_argument(
        "--min-done", type=int, default=2, metavar="N",
        help="cells that must commit before the SIGKILL (default: 2)",
    )
    parser.add_argument(
        "--instructions", type=int, default=400_000, metavar="N",
        help="per-cell instruction budget (default: 400000 — slow "
        "enough to kill mid-campaign, fast enough for CI)",
    )
    parser.add_argument(
        "--kill-timeout", type=float, default=300.0, metavar="S",
        help="give up if --min-done cells have not committed in S "
        "seconds (default: 300)",
    )
    args = parser.parse_args()

    workdir = Path(args.workdir)
    flight_dir = workdir / "flight"
    store_dir = workdir / "store"
    flight_dir.mkdir(parents=True, exist_ok=True)

    command = campaign_command(args, flight_dir, store_dir)
    print(f"[resilience] launching: {' '.join(command)}", flush=True)
    victim = subprocess.Popen(
        command,
        env={**__import__("os").environ, "PYTHONPATH": SRC_DIR},
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )

    deadline = time.monotonic() + args.kill_timeout
    done_before = 0
    manifest = None
    while time.monotonic() < deadline:
        if victim.poll() is not None:
            raise SystemExit(
                "campaign finished (or died) before the kill landed — "
                "raise --instructions so the check can interrupt it"
            )
        manifests = list(flight_dir.glob("*.jsonl"))
        if manifests:
            manifest = max(manifests, key=lambda p: p.stat().st_mtime)
            done_before = count_done_cells(manifest)
            if done_before >= args.min_done:
                break
        time.sleep(0.2)
    else:
        victim.kill()
        raise SystemExit(
            f"only {done_before} cells committed within "
            f"{args.kill_timeout:.0f}s; cannot exercise the kill"
        )

    victim.send_signal(signal.SIGKILL)
    victim.wait(timeout=60)
    print(
        f"[resilience] SIGKILL after {done_before} done cells; "
        f"manifest: {manifest}",
        flush=True,
    )
    # Recount after death: cells may have committed between the poll
    # and the kill.  This is the resumed run's baseline.
    done_before = count_done_cells(manifest)

    stats_path = workdir / "resume-stats.json"
    resume_command = command + [
        "--resume", str(manifest),
        "--stats-json", str(stats_path),
    ]
    print(f"[resilience] resuming: {' '.join(resume_command)}", flush=True)
    resumed = subprocess.run(
        resume_command,
        env={**__import__("os").environ, "PYTHONPATH": SRC_DIR},
    )
    if resumed.returncode != 0:
        raise SystemExit(
            f"resumed campaign failed with exit {resumed.returncode}"
        )

    stats = json.loads(stats_path.read_text())
    total = len(BENCHMARKS) * SCHEMES
    failures = []
    if stats["resumed_done"] != done_before:
        failures.append(
            f"manifest partition saw {stats['resumed_done']} done cells, "
            f"expected {done_before}"
        )
    # The store-hit gate: zero re-simulated done cells.
    if stats["store_hits"] < done_before:
        failures.append(
            f"only {stats['store_hits']} store hits for {done_before} "
            "done cells — a done cell re-simulated"
        )
    if stats["simulations"] > total - done_before:
        failures.append(
            f"{stats['simulations']} simulations for "
            f"{total - done_before} unfinished cells"
        )
    continuation = manifest_in(flight_dir)
    if continuation == manifest:
        failures.append("resumed run wrote no continuation manifest")
    else:
        begin = json.loads(
            continuation.read_text().splitlines()[0]
        )
        if begin.get("resume_of") != str(manifest):
            failures.append(
                f"continuation manifest does not link to the original: "
                f"resume_of={begin.get('resume_of')!r}"
            )
    if failures:
        for failure in failures:
            print(f"[resilience] FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        f"[resilience] OK: {done_before} done cells served from the "
        f"store, {stats['simulations']} re-executed, continuation "
        f"manifest {continuation.name} links to {manifest.name}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
