"""Integration tests: full pipeline on real stand-ins at small budgets."""

import pytest

from repro.sim.config import ExperimentConfig
from repro.sim.driver import run_benchmark
from repro.sim.experiment import compare_schemes, run_suite
from repro.workloads.specjvm import build_benchmark


@pytest.fixture(scope="module")
def config():
    return ExperimentConfig(max_instructions=600_000)


@pytest.fixture(scope="module")
def db_comparison(config):
    return compare_schemes("db", config)


class TestPipeline:
    def test_all_three_schemes_complete(self, db_comparison):
        for scheme in ("baseline", "bbv", "hotspot"):
            run = getattr(db_comparison, scheme)
            assert run.instructions >= 600_000
            assert run.cycles > 0

    def test_schemes_execute_identical_workload(self, db_comparison):
        # Same program, same seed: instruction streams align closely
        # (reconfiguration does not change control flow).
        base = db_comparison.baseline.instructions
        for scheme in ("bbv", "hotspot"):
            run = getattr(db_comparison, scheme)
            assert abs(run.instructions - base) < 5_000

    def test_adaptation_saves_energy(self, db_comparison):
        assert db_comparison.energy_reduction("hotspot", "L1D") > 0.2
        assert db_comparison.energy_reduction("hotspot", "L2") > 0.1

    def test_adaptation_costs_bounded_performance(self, db_comparison):
        assert db_comparison.slowdown("hotspot") < 0.25
        assert db_comparison.slowdown("bbv") < 0.35

    def test_baseline_never_reconfigures(self, db_comparison):
        counts = db_comparison.baseline.applied_reconfigurations
        assert all(v == 0 for v in counts.values())

    def test_hotspot_scheme_reconfigures(self, db_comparison):
        counts = db_comparison.hotspot.applied_reconfigurations
        assert counts["L1D"] > 0

    def test_hotspot_tables_populated(self, db_comparison):
        stats = db_comparison.hotspot.hotspot_stats
        assert stats.managed_hotspots >= 2
        assert stats.tuned_hotspots >= 1
        assert stats.coverage["L1D"] > 0.3

    def test_bbv_tables_populated(self, db_comparison):
        stats = db_comparison.bbv.bbv_stats
        assert stats.n_phases >= 1
        assert stats.intervals_total >= 55
        assert stats.occurrence_stats.total_intervals == (
            stats.intervals_total
        )


class TestReproducibility:
    def test_identical_configs_identical_results(self, config):
        a = run_benchmark(build_benchmark("jess"), "hotspot", config)
        b = run_benchmark(build_benchmark("jess"), "hotspot", config)
        assert a.cycles == b.cycles
        assert a.l1d_energy_nj == b.l1d_energy_nj
        assert a.applied_reconfigurations == b.applied_reconfigurations

    def test_seed_changes_results(self, config):
        a = run_benchmark(build_benchmark("jess"), "hotspot", config)
        other = ExperimentConfig(
            max_instructions=config.max_instructions, seed=777
        )
        b = run_benchmark(build_benchmark("jess"), "hotspot", other)
        assert a.cycles != b.cycles


class TestMultiThreaded:
    def test_mtrt_runs_both_threads(self, config):
        result = run_benchmark(build_benchmark("mtrt"), "hotspot", config)
        assert result.n_hotspots > 0
        assert result.instructions >= config.max_instructions


class TestSuiteRunner:
    def test_subset_suite(self, config):
        suite = run_suite(["db", "jess"], config)
        assert set(suite.comparisons) == {"db", "jess"}
        avg = suite.average_energy_reduction("hotspot", "L1D")
        assert -1.0 < avg < 1.0
        assert suite.average_slowdown("bbv") < 0.5


class TestMultiCUExtension:
    def test_pipeline_cus_participate(self):
        from repro.sim.config import MachineConfig

        config = ExperimentConfig(
            machine=MachineConfig(enable_pipeline_cus=True),
            max_instructions=500_000,
        )
        result = run_benchmark(
            build_benchmark("db"), "hotspot", config
        )
        stats = result.hotspot_stats
        assert "IQ" in stats.tunings and "ROB" in stats.tunings
        # The four-CU machine classifies small hotspots to IQ/ROB bands.
        kinds = set(stats.kind_of.values())
        assert kinds & {"IQ", "ROB", "L1D", "L2"}
