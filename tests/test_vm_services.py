"""Unit tests for VM services: hotspot detection, JIT, sampler."""

import pytest

from repro.isa.program import Method
from repro.vm.hotspot import DODatabase, HotspotDetector, MethodProfile
from repro.vm.jit import (
    CompileEvent,
    EntryStub,
    JITCompiler,
    OptimizationLevel,
)
from repro.vm.sampler import SamplingProfiler
from tests.conftest import make_loop_program


class TestMethodProfile:
    def test_size_ewma_converges(self):
        profile = MethodProfile("m")
        for _ in range(50):
            profile.record_completion(1000)
        assert profile.mean_size == pytest.approx(1000, rel=0.01)

    def test_first_completion_seeds_mean(self):
        profile = MethodProfile("m")
        profile.record_completion(500)
        assert profile.mean_size == 500

    def test_pre_hot_instructions_stop_at_promotion(self):
        profile = MethodProfile("m")
        profile.record_completion(100)
        profile.record_completion(100)
        profile.is_hot = True
        profile.record_completion(100)
        assert profile.pre_hot_instructions == 200


class TestHotspotDetector:
    def test_promotion_at_threshold_with_completed_invocation(self):
        db = DODatabase()
        detector = HotspotDetector(db, hot_threshold=3)
        assert detector.on_invocation("m", 0) is None
        db.profile("m").record_completion(100)
        assert detector.on_invocation("m", 100) is None
        db.profile("m").record_completion(100)
        info = detector.on_invocation("m", 200)
        assert info is not None
        assert info.name == "m"
        assert info.size_at_detection == pytest.approx(100)
        assert "m" in db.hotspots

    def test_no_promotion_without_completed_invocation(self):
        db = DODatabase()
        detector = HotspotDetector(db, hot_threshold=2)
        detector.on_invocation("m", 0)
        # Second invocation, but the first never completed.
        assert detector.on_invocation("m", 50) is None

    def test_recurring_hotspot_counts_invocations(self):
        db = DODatabase()
        detector = HotspotDetector(db, hot_threshold=1)
        db.profile("m").record_completion(10)
        # threshold 1 requires a completed invocation first
        info = detector.on_invocation("m", 10)
        assert info is not None
        detector.on_invocation("m", 20)
        detector.on_invocation("m", 30)
        assert db.hotspots["m"].invocations_since_hot == 3

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            HotspotDetector(DODatabase(), 0)


class TestJITCompiler:
    def make_method(self) -> Method:
        return make_loop_program().methods["work"]

    def test_baseline_once(self):
        jit = JITCompiler()
        method = self.make_method()
        cost = jit.ensure_baseline(method, 0)
        assert cost > 0
        assert jit.ensure_baseline(method, 10) == 0.0
        assert jit.level_of(method.name) == OptimizationLevel.BASELINE

    def test_optimize_hotspot_goes_to_top_level(self):
        jit = JITCompiler()
        method = self.make_method()
        jit.ensure_baseline(method, 0)
        cost = jit.optimize_hotspot(method, 100)
        assert cost > 0
        assert jit.level_of(method.name) == OptimizationLevel.O2

    def test_no_downgrade(self):
        jit = JITCompiler()
        method = self.make_method()
        jit.optimize_hotspot(method, 0)
        assert jit.compile(method, OptimizationLevel.O1, 10) == 0.0

    def test_compile_log(self):
        jit = JITCompiler()
        method = self.make_method()
        jit.ensure_baseline(method, 5)
        assert len(jit.compile_log) == 1
        entry = jit.compile_log[0]
        assert isinstance(entry, CompileEvent)
        assert entry.at_instructions == 5

    def test_optimized_cost_exceeds_baseline(self):
        jit = JITCompiler()
        method = self.make_method()
        baseline = jit.ensure_baseline(method, 0)
        optimized = jit.optimize_hotspot(method, 0)
        assert optimized > baseline

    def test_stub_patching(self):
        jit = JITCompiler()
        stub = EntryStub("tuning", lambda *a: None)
        jit.patch_entry("m", stub)
        assert jit.entry_stub("m") is stub
        jit.patch_entry("m", None)
        assert jit.entry_stub("m") is None
        jit.patch_exit("m", stub)
        assert jit.exit_stub("m") is stub

    def test_code_quality_ordering(self):
        jit = JITCompiler()
        method = self.make_method()
        baseline_quality = jit.code_quality(method.name)
        jit.optimize_hotspot(method, 0)
        assert jit.code_quality(method.name) > baseline_quality


class TestSamplingProfiler:
    def test_samples_on_period(self):
        sampler = SamplingProfiler(sample_period_cycles=100)
        assert sampler.advance(99, "a") == 0
        assert sampler.advance(100, "a") == 1
        assert sampler.samples["a"] == 1

    def test_multiple_periods_in_one_step(self):
        sampler = SamplingProfiler(sample_period_cycles=10)
        assert sampler.advance(35, "m") == 3
        assert sampler.total_samples == 3

    def test_hottest_ranking(self):
        sampler = SamplingProfiler(sample_period_cycles=1)
        sampler.advance(5, "a")
        sampler.advance(7, "b")
        ranked = sampler.hottest(2)
        assert ranked[0][0] == "a"  # 5 samples vs 2
        assert sampler.sample_share("a") == pytest.approx(5 / 7)

    def test_rejects_bad_period(self):
        with pytest.raises(ValueError):
            SamplingProfiler(0)
