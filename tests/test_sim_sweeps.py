"""Tests for the parameter-sweep utility."""

import pytest

from repro.sim.config import ExperimentConfig
from repro.sim.sweeps import SweepPoint, set_config_path, sweep_parameter


class TestSetConfigPath:
    def test_plain_attribute(self):
        config = ExperimentConfig()
        set_config_path(config, "hot_threshold", 9)
        assert config.hot_threshold == 9

    def test_frozen_nested_dataclass(self):
        config = ExperimentConfig()
        set_config_path(config, "tuning.performance_threshold", 0.07)
        assert config.tuning.performance_threshold == 0.07
        # Other fields of the frozen dataclass are preserved.
        assert config.tuning.measurements_per_trial >= 1

    def test_bbv_path(self):
        config = ExperimentConfig()
        set_config_path(config, "bbv.similarity_threshold", 0.5)
        assert config.bbv.similarity_threshold == 0.5

    def test_machine_scale_path(self):
        config = ExperimentConfig()
        set_config_path(config, "machine.params.scale", 0.02)
        assert config.machine.params.scale == 0.02
        assert config.machine.params.l1d_reconfig_interval == 2000


class TestSweep:
    def test_sweep_runs_all_points(self):
        points = sweep_parameter(
            "hot_threshold", [3, 8],
            benchmark="db", max_instructions=200_000,
        )
        assert len(points) == 2
        assert [p.value for p in points] == [3, 8]
        for point in points:
            assert isinstance(point, SweepPoint)
            assert point.result.instructions >= 200_000
            assert -1.0 < point.l1d_energy_reduction < 1.0
            assert -0.5 < point.slowdown < 1.0

    def test_sweep_changes_behaviour(self):
        points = sweep_parameter(
            "hot_threshold", [3, 30],
            benchmark="db", max_instructions=300_000,
        )
        # A 10x hot_threshold delays detection measurably.
        assert (
            points[1].result.identification_latency
            > points[0].result.identification_latency
        )

    def test_empty_values_rejected(self):
        with pytest.raises(ValueError):
            sweep_parameter("hot_threshold", [])

    def test_base_config_not_mutated(self):
        base = ExperimentConfig(max_instructions=200_000)
        sweep_parameter(
            "tuning.performance_threshold", [0.5], base_config=base
        )
        assert base.tuning.performance_threshold == 0.02
