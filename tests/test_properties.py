"""Property-based tests (hypothesis) on core data structures and
invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tuning import (
    TuningOutcome,
    choose_best_robust,
    make_config_list,
)
from repro.isa.program import LoopDecider
from repro.phases.bbv import BBVAccumulator, manhattan_distance, normalize
from repro.trace.stream import IntervalSplitter
from repro.uarch.cache import Cache
from repro.uarch.registers import ReconfigurationGuard
from repro.vm.blockjit import compile_fused_block
from repro.workloads.patterns import (
    MixedBehavior,
    PointerChaseBehavior,
    StackBehavior,
    StridedBehavior,
    WanderingWindowBehavior,
    WorkingSetBehavior,
)
from repro.workloads.synthetic import random_program

KB = 1024

addresses = st.lists(
    st.integers(min_value=0, max_value=1 << 24), min_size=0, max_size=60
)


class TestCacheProperties:
    @given(loads=addresses, stores=addresses)
    @settings(max_examples=60, deadline=None)
    def test_capacity_never_exceeded(self, loads, stores):
        cache = Cache("c", 1 * KB, 64, 2, sizes=(1 * KB,))
        cache.access_many(loads, stores)
        assert cache.resident_lines <= cache.n_lines
        for s in cache._sets:
            assert len(s) <= cache.associativity

    @given(loads=addresses)
    @settings(max_examples=60, deadline=None)
    def test_most_recent_access_is_resident(self, loads):
        cache = Cache("c", 1 * KB, 64, 2, sizes=(1 * KB,))
        for addr in loads:
            cache.access(addr)
            assert cache.contains(addr)

    @given(
        loads=addresses,
        sizes=st.lists(
            st.sampled_from([8 * KB, 4 * KB, 2 * KB, 1 * KB]),
            min_size=1, max_size=6,
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_resize_sequence_keeps_lookups_consistent(self, loads, sizes):
        cache = Cache(
            "c", 8 * KB, 64, 2, sizes=(8 * KB, 4 * KB, 2 * KB, 1 * KB)
        )
        cache.access_many(loads, ())
        for size in sizes:
            cache.resize(size)
            # Every line the cache claims to hold must be a hit when
            # accessed (no stale placements after remapping).
            for addr in loads:
                if cache.contains(addr):
                    assert cache.access(addr)
            assert cache.resident_lines <= cache.n_lines

    @given(loads=addresses, stores=addresses)
    @settings(max_examples=60, deadline=None)
    def test_stats_consistency(self, loads, stores):
        cache = Cache("c", 2 * KB, 64, 2, sizes=(2 * KB,))
        result = cache.access_many(loads, stores)
        assert result.accesses == len(loads) + len(stores)
        assert (
            result.read_hits + result.read_misses == len(loads)
        )
        assert len(result.miss_lines) == result.misses

    @given(stores=addresses)
    @settings(max_examples=60, deadline=None)
    def test_flush_returns_exactly_dirty_lines(self, stores):
        cache = Cache("c", 2 * KB, 64, 2, sizes=(2 * KB,))
        cache.access_many((), stores)
        dirty_count = cache.dirty_lines
        flushed = cache.flush()
        assert len(flushed) == dirty_count
        assert cache.resident_lines == 0


class TestIntervalSplitterProperties:
    @given(
        steps=st.lists(
            st.integers(min_value=1, max_value=500),
            min_size=1, max_size=60,
        ),
        interval=st.integers(min_value=1, max_value=200),
    )
    @settings(max_examples=80, deadline=None)
    def test_intervals_partition_the_stream(self, steps, interval):
        emitted = []
        splitter = IntervalSplitter(
            interval, lambda i, n: emitted.append(n)
        )
        for step in steps:
            splitter.advance(step)
        splitter.flush()
        assert sum(emitted) == sum(steps)
        # All but the final (partial) interval are exactly full.
        for n in emitted[:-1]:
            assert n == interval

    @given(
        steps=st.lists(
            st.integers(min_value=1, max_value=100),
            min_size=1, max_size=40,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_indices_are_sequential(self, steps):
        indices = []
        splitter = IntervalSplitter(17, lambda i, n: indices.append(i))
        for step in steps:
            splitter.advance(step)
        assert indices == list(range(len(indices)))


class TestGuardProperties:
    @given(
        times=st.lists(
            st.integers(min_value=0, max_value=10_000),
            min_size=1, max_size=40,
        ),
        interval=st.integers(min_value=1, max_value=500),
    )
    @settings(max_examples=60, deadline=None)
    def test_granted_requests_respect_interval(self, times, interval):
        guard = ReconfigurationGuard()
        guard.register("cu", interval)
        granted_at = []
        for t in sorted(times):
            if guard.request("cu", t):
                granted_at.append(t)
        for a, b in zip(granted_at, granted_at[1:]):
            assert b - a >= interval


class TestBBVProperties:
    @given(
        observations=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1 << 20),
                st.integers(min_value=0, max_value=1000),
            ),
            max_size=50,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_mass_conserved_up_to_saturation(self, observations):
        acc = BBVAccumulator(n_buckets=8, counter_bits=24)
        for pc, n in observations:
            acc.observe(pc, n)
        if not acc.saturations:
            assert sum(acc.peek()) == sum(n for _, n in observations)

    @given(
        a=st.lists(st.integers(min_value=0, max_value=1000),
                   min_size=4, max_size=4),
        b=st.lists(st.integers(min_value=0, max_value=1000),
                   min_size=4, max_size=4),
    )
    @settings(max_examples=100, deadline=None)
    def test_normalized_distance_bounds(self, a, b):
        distance = manhattan_distance(normalize(a), normalize(b))
        assert -1e-9 <= distance <= 2.0 + 1e-9

    @given(
        v=st.lists(st.integers(min_value=0, max_value=1000),
                   min_size=1, max_size=16)
    )
    @settings(max_examples=100, deadline=None)
    def test_normalize_unit_mass(self, v):
        total = sum(normalize(v))
        if sum(v) > 0:
            assert abs(total - 1.0) < 1e-9
        else:
            assert total == 0.0


class TestTuningProperties:
    @given(counts=st.lists(st.integers(min_value=1, max_value=4),
                           min_size=1, max_size=3))
    @settings(max_examples=60, deadline=None)
    def test_config_list_is_exactly_the_product(self, counts):
        configs = make_config_list(counts)
        expected = 1
        for n in counts:
            expected *= n
        assert len(configs) == expected
        assert len(set(configs)) == expected
        assert configs[0] == tuple([0] * len(counts))

    @given(
        ipcs=st.lists(
            st.floats(min_value=0.1, max_value=4.0),
            min_size=1, max_size=8,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_choose_best_robust_never_picks_deep_loser(self, ipcs):
        outcomes = [
            TuningOutcome((i,), ipc, 1.0 / (i + 1), 1000)
            for i, ipc in enumerate(ipcs)
        ]
        best = choose_best_robust(outcomes, 0.02)
        assert best is not None
        ordered = sorted(ipcs)
        median = (
            ordered[len(ordered) // 2]
            if len(ordered) % 2
            else 0.5 * (ordered[len(ordered) // 2 - 1]
                        + ordered[len(ordered) // 2])
        )
        # The selected config is never more than the threshold below the
        # median (unless nothing qualifies at all, in which case it is
        # the fastest).
        fastest = max(ipcs)
        assert (
            best.ipc >= median * 0.98 - 1e-9 or best.ipc == fastest
        )


class TestWorkloadProperties:
    @given(
        weights=st.lists(
            st.floats(min_value=0.05, max_value=5.0),
            min_size=1, max_size=4,
        ),
        n_loads=st.integers(min_value=0, max_value=50),
        n_stores=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=60, deadline=None)
    def test_mixed_behavior_conserves_counts(
        self, weights, n_loads, n_stores
    ):
        behavior = MixedBehavior(
            [(StackBehavior(), w) for w in weights]
        )
        rng = random.Random(1)
        loads, stores = behavior.generate(
            rng, 0x1000, 0x2000, 0, n_loads, n_stores
        )
        assert len(loads) == n_loads
        assert len(stores) == n_stores

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_random_programs_always_validate(self, seed):
        program = random_program(seed)
        assert program.is_laid_out

    @given(
        trips=st.integers(min_value=1, max_value=30),
        draws=st.integers(min_value=1, max_value=100),
    )
    @settings(max_examples=60, deadline=None)
    def test_loop_decider_taken_run_lengths(self, trips, draws):
        decider = LoopDecider(trips)
        rng = random.Random(0)
        state = decider.initial_state(rng)
        run = 0
        for _ in range(draws):
            taken, state = decider.decide(state, rng)
            if taken:
                run += 1
                assert run <= trips - 1
            else:
                run = 0


# ---------------------------------------------------------------------------
# Kernel-facing invariants (reference vs fast simulation paths)
# ---------------------------------------------------------------------------

#: Sentinel passed to fused closures, like the fast kernel does.
_MISSING = object()

#: Every fusable behaviour family, with parameter ranges wide enough to
#: hit unrolled and looped emission, multi-set caches, and wrap-around
#: arithmetic (Strided/WanderingWindow offsets).
fusable_behaviors = st.one_of(
    st.builds(StackBehavior, st.integers(min_value=16, max_value=4096)),
    st.builds(
        WorkingSetBehavior,
        st.integers(min_value=64, max_value=8192),
        st.floats(min_value=0.05, max_value=0.95),
    ),
    st.builds(PointerChaseBehavior, st.integers(min_value=16, max_value=4096)),
    st.builds(
        StridedBehavior,
        st.integers(min_value=64, max_value=4096),
        st.sampled_from([4, 8, 16, 64]),
    ),
    st.builds(
        WanderingWindowBehavior,
        st.integers(min_value=64, max_value=1024),
        st.integers(min_value=2048, max_value=16384),
        st.integers(min_value=16, max_value=512),
    ),
)


class TestFusedClosureLockstep:
    """The codegen'd fused closures (fast kernel) against the readable
    ``generate`` + ``access_many`` pair (reference kernel), in lockstep:
    same RNG consumption, same cache state, same traffic."""

    @given(
        behavior=fusable_behaviors,
        n_loads=st.integers(min_value=0, max_value=24),
        n_stores=st.integers(min_value=0, max_value=24),
        seed=st.integers(min_value=0, max_value=10**6),
        iteration=st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=120, deadline=None)
    def test_fused_closure_matches_reference_pair(
        self, behavior, n_loads, n_stores, seed, iteration
    ):
        fused = compile_fused_block(behavior, n_loads, n_stores)
        assert fused is not None
        ref_cache = Cache("c", 1 * KB, 64, 2, sizes=(1 * KB,))
        fast_cache = Cache("c", 1 * KB, 64, 2, sizes=(1 * KB,))
        ref_rng = random.Random(seed)
        fast_rng = random.Random(seed)
        frame_base, region_base = 0x1000_0000, 0x2000_0000
        loads, stores = behavior.generate(
            ref_rng, frame_base, region_base, iteration, n_loads, n_stores
        )
        result = ref_cache.access_many(loads, stores)
        read_misses, write_misses, miss_lines, wb_lines = fused(
            fast_rng, frame_base, region_base, iteration, fast_cache, _MISSING
        )
        # Identical RNG stream consumption...
        assert fast_rng.getstate() == ref_rng.getstate()
        # ...identical traffic (None means "empty" in the fused ABI)...
        assert (read_misses, write_misses) == (
            result.read_misses, result.write_misses
        )
        assert (miss_lines or []) == result.miss_lines
        assert (wb_lines or []) == result.writeback_lines
        # ...and identical cache state, dirty bits and LRU order included
        # (dict order is insertion order, which *is* the LRU order here).
        assert list(fast_cache._sets[0].items()) == list(
            ref_cache._sets[0].items()
        )
        assert fast_cache._sets == ref_cache._sets

    @given(
        behavior=fusable_behaviors,
        weight=st.floats(min_value=0.1, max_value=4.0),
        n_loads=st.integers(min_value=0, max_value=10),
        n_stores=st.integers(min_value=0, max_value=6),
        seed=st.integers(min_value=0, max_value=10**6),
        iteration=st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=120, deadline=None)
    def test_mixed_behavior_matches_reference_pair(
        self, behavior, weight, n_loads, n_stores, seed, iteration
    ):
        """Two-phase mixed fusion: draws in ``generate`` order (per
        component), cache transitions in ``access_many`` order (all
        loads, then all stores) — stream, traffic, and state lockstep."""
        mixed = MixedBehavior([(behavior, weight), (StackBehavior(), 1.0)])
        fused = compile_fused_block(mixed, n_loads, n_stores)
        assert fused is not None
        ref_cache = Cache("c", 1 * KB, 64, 2, sizes=(1 * KB,))
        fast_cache = Cache("c", 1 * KB, 64, 2, sizes=(1 * KB,))
        ref_rng = random.Random(seed)
        fast_rng = random.Random(seed)
        frame_base, region_base = 0x1000_0000, 0x2000_0000
        loads, stores = mixed.generate(
            ref_rng, frame_base, region_base, iteration, n_loads, n_stores
        )
        result = ref_cache.access_many(loads, stores)
        read_misses, write_misses, miss_lines, wb_lines = fused(
            fast_rng, frame_base, region_base, iteration, fast_cache, _MISSING
        )
        assert fast_rng.getstate() == ref_rng.getstate()
        assert (read_misses, write_misses) == (
            result.read_misses, result.write_misses
        )
        assert (miss_lines or []) == result.miss_lines
        assert (wb_lines or []) == result.writeback_lines
        assert fast_cache._sets == ref_cache._sets

    def test_oversized_mixed_blocks_keep_the_list_path(self):
        """Mixes beyond the unroll budget stay unfused (no loop form
        exists for the two-phase draw buffer)."""
        mixed = MixedBehavior(
            [(WorkingSetBehavior(512), 1.0), (StackBehavior(), 1.0)]
        )
        assert compile_fused_block(mixed, 20, 10) is None


class TestCacheInvariantsUnderKernelPaths:
    """ISSUE invariants (misses <= accesses, snapshot monotonicity,
    resize preserves access totals) exercised through *both* batched
    entry points the kernels use."""

    @staticmethod
    def _drive(cache, loads, stores, path):
        if path == "access_many":
            cache.access_many(loads, stores)
        else:
            cache.access_block(loads, stores)

    @given(
        loads=addresses,
        stores=addresses,
        path=st.sampled_from(["access_many", "access_block"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_misses_never_exceed_accesses(self, loads, stores, path):
        cache = Cache("c", 1 * KB, 64, 2, sizes=(1 * KB,))
        self._drive(cache, loads, stores, path)
        stats = cache.stats
        assert stats.misses <= stats.accesses
        assert stats.read_misses <= stats.read_accesses
        assert stats.write_misses <= stats.write_accesses

    @given(
        batches=st.lists(
            st.tuples(addresses, addresses), min_size=1, max_size=8
        ),
        path=st.sampled_from(["access_many", "access_block"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_snapshot_monotonicity(self, batches, path):
        cache = Cache("c", 1 * KB, 64, 2, sizes=(1 * KB,))
        previous = cache.stats.snapshot()
        for loads, stores in batches:
            self._drive(cache, loads, stores, path)
            current = cache.stats.snapshot()
            assert all(b >= a for a, b in zip(previous, current))
            previous = current

    @given(
        loads=addresses,
        stores=addresses,
        size=st.sampled_from([4 * KB, 2 * KB, 1 * KB]),
        policy=st.sampled_from(["selective", "flush"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_resize_preserves_access_totals(self, loads, stores, size, policy):
        cache = Cache(
            "c", 8 * KB, 64, 2,
            sizes=(8 * KB, 4 * KB, 2 * KB, 1 * KB),
            resize_policy=policy,
        )
        cache.access_many(loads, stores)
        before = (
            cache.stats.read_accesses,
            cache.stats.read_misses,
            cache.stats.write_accesses,
            cache.stats.write_misses,
        )
        cache.resize(size)
        after = (
            cache.stats.read_accesses,
            cache.stats.read_misses,
            cache.stats.write_accesses,
            cache.stats.write_misses,
        )
        assert after == before
        assert cache.resident_lines <= cache.n_lines
