"""Unit tests for the machine model (consume, reconfigure, snapshots)."""

import pytest

from repro.sim.config import MachineConfig, build_machine
from repro.trace.events import BlockEvent

KB = 1024


def make_event(n_insns=20, loads=(), stores=(), branch_pc=0x4000,
               taken=True, serialized=False):
    return BlockEvent(
        "m", "b", n_insns, list(loads), list(stores),
        branch_pc, taken, serialized=serialized,
    )


class TestConsume:
    def test_counters_advance(self, machine):
        cycles = machine.consume(make_event(n_insns=40, loads=[0x1000]))
        assert machine.instructions == 40
        assert machine.cycles == pytest.approx(cycles)
        assert cycles > 0

    def test_memory_traffic_reaches_l2(self, machine):
        machine.consume(make_event(loads=[0x1000, 0x2000]))
        assert machine.hierarchy.l1d.stats.read_misses == 2
        assert machine.hierarchy.l2.stats.accesses == 2

    def test_energy_accrues(self, machine):
        machine.consume(make_event(loads=[0x1000], stores=[0x2000]))
        assert machine.energy.l1d.dynamic_nj > 0
        assert machine.energy.l1d.leakage_nj > 0
        assert machine.energy.l2.dynamic_nj > 0

    def test_unconditional_block_skips_predictor(self, machine):
        machine.consume(make_event(branch_pc=None))
        assert machine.predictor.lookups == 0

    def test_conditional_block_trains_predictor(self, machine):
        machine.consume(make_event(branch_pc=0x4000, taken=True))
        assert machine.predictor.lookups == 1

    def test_serialized_block_costs_more(self, machine):
        ev1 = make_event(loads=[0x100000, 0x200000], serialized=False)
        cycles_fast = machine.consume(ev1)
        ev2 = make_event(loads=[0x300000, 0x400000], serialized=True)
        cycles_slow = machine.consume(ev2)
        assert cycles_slow > cycles_fast


class TestReconfiguration:
    def test_request_changes_setting(self, machine):
        assert machine.request_reconfiguration("L1D", 2) is True
        assert machine.cus["L1D"].current_index == 2
        assert machine.registers.read("L1D") == 2
        assert machine.applied_reconfigurations["L1D"] == 1

    def test_same_setting_is_free_success(self, machine):
        machine.request_reconfiguration("L1D", 1)
        count = machine.applied_reconfigurations["L1D"]
        assert machine.request_reconfiguration("L1D", 1) is True
        assert machine.applied_reconfigurations["L1D"] == count

    def test_guard_denies_rapid_changes(self, machine):
        machine.request_reconfiguration("L1D", 1)
        # No instructions retired since: inside the interval.
        assert machine.request_reconfiguration("L1D", 2) is False
        assert machine.denied_reconfigurations["L1D"] == 1
        assert machine.cus["L1D"].current_index == 1

    def test_guard_releases_after_interval(self, machine):
        machine.request_reconfiguration("L1D", 1)
        interval = machine.cus["L1D"].reconfiguration_interval
        while machine.instructions < interval:
            machine.consume(make_event(n_insns=100, branch_pc=None))
        assert machine.request_reconfiguration("L1D", 2) is True

    def test_l1_flush_writebacks_go_to_l2(self, machine):
        machine.consume(make_event(stores=[0x0]))  # dirty line in set 0
        # Shrinking keeps set 0; use a high-set dirty line instead.
        new_sets = machine.hierarchy.l1d.sizes[-1] // (64 * 2)
        addr = new_sets * 64
        machine.consume(make_event(stores=[addr]))
        l2_writes = machine.hierarchy.l2.stats.write_accesses
        machine.request_reconfiguration("L1D", 3)
        assert machine.hierarchy.l2.stats.write_accesses > l2_writes
        assert machine.energy.l1d.reconfig_nj > 0

    def test_l2_flush_writebacks_go_to_memory(self, machine):
        new_sets = machine.hierarchy.l2.sizes[-1] // (128 * 4)
        addr = new_sets * 128
        machine.consume(make_event(stores=[addr] * 3))
        # Let the write miss fill L2 and dirty it via L1 eviction; force
        # eviction by conflicting lines.
        n_sets = machine.hierarchy.l1d.n_sets
        for i in range(1, 4):
            machine.consume(
                make_event(loads=[addr + i * n_sets * 64])
            )
        mem_writes = machine.hierarchy.memory_writes
        machine.request_reconfiguration("L2", 3)
        assert machine.hierarchy.memory_writes >= mem_writes

    def test_energy_repriced_after_resize(self, machine):
        machine.request_reconfiguration("L1D", 3)
        start = machine.energy.l1d.dynamic_nj
        machine.consume(make_event(loads=[0x1000]))
        small_cost = machine.energy.l1d.dynamic_nj - start
        # Compare with a fresh machine at maximum size.
        big = build_machine(MachineConfig())
        big.consume(make_event(loads=[0x1000]))
        assert small_cost < big.energy.l1d.dynamic_nj

    def test_reconfiguration_log(self):
        machine = build_machine(
            MachineConfig(record_reconfigurations=True)
        )
        machine.request_reconfiguration("L1D", 1, actor="test")
        assert len(machine.reconfiguration_log) == 1
        record = machine.reconfiguration_log[0]
        assert record.cu == "L1D"
        assert record.actor == "test"
        assert record.to_index == 1


class TestSnapshots:
    def test_delta_computes_window(self, machine):
        before = machine.snapshot()
        machine.consume(make_event(n_insns=50, loads=[0x1000]))
        delta = machine.snapshot().delta(before)
        assert delta.instructions == 50
        assert delta.cycles > 0
        assert delta.l1d_accesses == 1
        assert 0 < delta.ipc < 5

    def test_delta_energy_fields(self, machine):
        before = machine.snapshot()
        machine.consume(make_event(loads=[0x1000], stores=[0x2000]))
        delta = machine.snapshot().delta(before)
        assert delta.l1d_energy_nj > 0
        assert delta.l2_dynamic_nj > 0

    def test_tuning_energy_metric_l1d(self, machine):
        before = machine.snapshot()
        machine.consume(make_event(loads=[0x1000]))
        delta = machine.snapshot().delta(before)
        metric = delta.tuning_energy_metric("L1D", machine)
        assert metric == pytest.approx(
            delta.l1d_energy_nj + delta.l2_dynamic_nj
        )

    def test_tuning_energy_metric_l2(self, machine):
        before = machine.snapshot()
        machine.consume(make_event(loads=[0x1000]))
        delta = machine.snapshot().delta(before)
        metric = delta.tuning_energy_metric("L2", machine)
        assert metric == pytest.approx(
            delta.l2_energy_nj + delta.memory_nj
        )

    def test_unknown_cu_metric_rejected(self, machine):
        before = machine.snapshot()
        machine.consume(make_event())
        delta = machine.snapshot().delta(before)
        with pytest.raises(KeyError):
            delta.tuning_energy_metric("IQ", machine)


class TestMethodEntry:
    def test_instruction_fetch_charges_cycles(self, machine):
        cycles = machine.on_method_entry("m", 2048)
        assert cycles > 0
        assert machine.cycles == pytest.approx(cycles)

    def test_resident_method_is_free(self, machine):
        machine.on_method_entry("m", 2048)
        assert machine.on_method_entry("m", 2048) == 0.0


class TestPipelineCUs:
    def test_build_with_pipeline_cus(self):
        machine = build_machine(MachineConfig(enable_pipeline_cus=True))
        assert "IQ" in machine.cus and "ROB" in machine.cus
        assert "IQ" in machine.energy.pipeline
        machine.request_reconfiguration("IQ", 2)
        assert machine.timing.ilp_factor < 1.0
        # Pipeline energy repriced at the smaller setting.
        assert machine.energy.pipeline["IQ"].current_entries == 32
