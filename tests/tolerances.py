"""Tolerance-testing toolkit: bounded-deviation comparison primitives.

The bit-identical equivalence harness (``tests/equivalence.py``) asks
"are these two trees *exactly* equal, and where do they first split?".
The statistical equivalence harness (``tests/stat_equivalence.py``) asks
a weaker question of the turbo kernel: "is every metric within its
committed tolerance, and how close did it come?".  Both need the same
reporting discipline — a failure must name the cell, the metric, and the
two values, not dump opaque blobs — so the shared primitives live here:

* :func:`first_divergence` / :func:`describe_divergence` — exact
  tree-diff helpers (moved from ``tests/equivalence.py``, which
  re-exports them for its existing callers);
* :func:`assert_within_tolerance` — one metric comparison under a
  relative + absolute tolerance, with explicit zero-baseline and NaN
  semantics;
* :class:`DeviationReport` — accumulates every comparison of a sweep and
  renders a worst-deviation-first report (also JSON-serialisable, so CI
  can upload it as an artifact).

Semantics of a tolerance check (``baseline`` is the trusted kernel,
``candidate`` the one under test):

* both values NaN → equal (a metric that is undefined in both runs, e.g.
  a miss rate with zero accesses, is not a deviation);
* exactly one NaN → always a failure (no tolerance covers "the metric
  stopped existing");
* otherwise the check is ``|candidate - baseline| <= abs_tol +
  rel_tol * |baseline|`` — with a zero baseline the relative term
  vanishes and ``abs_tol`` alone governs, so a spec entry for a
  possibly-zero metric must carry an absolute floor.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple


def first_divergence(
    a: object, b: object, path: str = "$"
) -> Optional[Tuple[str, object, object]]:
    """First differing leaf between two JSON-like trees, or ``None``.

    Comparison is exact — including floats: bit-identical kernels must
    perform the same float operations in the same order, so even the
    last ulp has to match.  Returns ``(path, value_in_a, value_in_b)``.
    """
    if type(a) is not type(b) and not (
        isinstance(a, (int, float))
        and isinstance(b, (int, float))
        and not isinstance(a, bool)
        and not isinstance(b, bool)
    ):
        return (path, a, b)
    if isinstance(a, dict):
        for key in sorted(set(a) | set(b), key=str):
            here = f"{path}.{key}"
            if key not in a:
                return (here, "<absent>", b[key])
            if key not in b:
                return (here, a[key], "<absent>")
            hit = first_divergence(a[key], b[key], here)
            if hit is not None:
                return hit
        return None
    if isinstance(a, (list, tuple)):
        for index, (item_a, item_b) in enumerate(zip(a, b)):
            hit = first_divergence(item_a, item_b, f"{path}[{index}]")
            if hit is not None:
                return hit
        if len(a) != len(b):
            return (f"{path}.length", len(a), len(b))
        return None
    if a != b:
        return (path, a, b)
    return None


def describe_divergence(
    cell: str, kind: str, hit: Tuple[str, object, object]
) -> str:
    """Render one divergence the way a human wants to read it first."""
    path, ref_value, fast_value = hit
    return (
        f"{cell}: kernels diverge in {kind} at {path}\n"
        f"  reference: {ref_value!r}\n"
        f"  fast:      {fast_value!r}"
    )


class Deviation:
    """One recorded metric comparison (see :class:`DeviationReport`)."""

    __slots__ = (
        "cell", "metric", "baseline", "candidate",
        "abs_dev", "rel_dev", "budget", "ok",
    )

    def __init__(self, cell, metric, baseline, candidate, budget, ok):
        self.cell = cell
        self.metric = metric
        self.baseline = baseline
        self.candidate = candidate
        if math.isnan(baseline) or math.isnan(candidate):
            self.abs_dev = float("nan")
            self.rel_dev = float("nan")
        else:
            self.abs_dev = abs(candidate - baseline)
            self.rel_dev = (
                self.abs_dev / abs(baseline) if baseline else float("inf")
            ) if self.abs_dev else 0.0
        #: Fraction of the allowed budget this deviation consumed
        #: (1.0 = exactly at the tolerance; > 1.0 = failure).  Lets the
        #: report rank a 0.1%-of-a-10%-budget deviation below a
        #: 0.9%-of-a-1%-budget one.
        self.budget = budget
        self.ok = ok

    def describe(self) -> str:
        rel = (
            f"{self.rel_dev:.3%}" if math.isfinite(self.rel_dev) else "inf"
        )
        status = "ok" if self.ok else "EXCEEDED"
        return (
            f"{self.cell}: {self.metric} baseline={self.baseline!r} "
            f"candidate={self.candidate!r} rel_dev={rel} "
            f"budget_used={self.budget:.2f} {status}"
        )


class DeviationReport:
    """Accumulates tolerance checks; renders worst deviations first.

    ``record`` never raises — the harness decides what to do with
    failures (``assert_within_tolerance`` raises eagerly instead).  The
    report is the artefact the nightly grid uploads: even a fully green
    run shows how much headroom each tolerance has left.
    """

    def __init__(self) -> None:
        self.deviations: List[Deviation] = []

    def record(
        self,
        cell: str,
        metric: str,
        baseline: float,
        candidate: float,
        rel_tol: float,
        abs_tol: float = 0.0,
    ) -> Deviation:
        nan_b, nan_c = math.isnan(baseline), math.isnan(candidate)
        if nan_b or nan_c:
            ok = nan_b and nan_c
            budget = 0.0 if ok else float("inf")
        else:
            allowed = abs_tol + rel_tol * abs(baseline)
            abs_dev = abs(candidate - baseline)
            ok = abs_dev <= allowed
            budget = (
                abs_dev / allowed if allowed
                else (0.0 if abs_dev == 0.0 else float("inf"))
            )
        deviation = Deviation(cell, metric, baseline, candidate, budget, ok)
        self.deviations.append(deviation)
        return deviation

    def failures(self) -> List[Deviation]:
        return [d for d in self.deviations if not d.ok]

    def worst(self, n: int = 10) -> List[Deviation]:
        """The ``n`` comparisons that consumed the most of their budget."""
        ranked = sorted(
            self.deviations, key=lambda d: d.budget, reverse=True
        )
        return ranked[:n]

    def render(self, n: int = 10) -> str:
        """Human-first report: verdict, then worst deviations."""
        failures = self.failures()
        lines = [
            f"{len(self.deviations)} tolerance checks, "
            f"{len(failures)} exceeded"
        ]
        shown = failures + [d for d in self.worst(n) if d.ok]
        for deviation in shown[: max(n, len(failures))]:
            lines.append("  " + deviation.describe())
        return "\n".join(lines)

    def to_json(self) -> dict:
        def _f(value: float):
            return value if math.isfinite(value) else repr(value)

        return {
            "checks": len(self.deviations),
            "failures": len(self.failures()),
            "deviations": [
                {
                    "cell": d.cell,
                    "metric": d.metric,
                    "baseline": _f(d.baseline),
                    "candidate": _f(d.candidate),
                    "rel_dev": _f(d.rel_dev),
                    "budget_used": _f(d.budget),
                    "ok": d.ok,
                }
                for d in sorted(
                    self.deviations, key=lambda d: d.budget, reverse=True
                )
            ],
        }


def assert_within_tolerance(
    cell: str,
    metric: str,
    baseline: float,
    candidate: float,
    rel_tol: float,
    abs_tol: float = 0.0,
    report: Optional[DeviationReport] = None,
) -> None:
    """Assert one metric within tolerance; message names everything.

    When ``report`` is given the comparison is also recorded there (so a
    sweep can both fail fast and still render its context).
    """
    scratch = report if report is not None else DeviationReport()
    deviation = scratch.record(
        cell, metric, baseline, candidate, rel_tol, abs_tol
    )
    if not deviation.ok:
        raise AssertionError(
            deviation.describe()
            + f" (rel_tol={rel_tol}, abs_tol={abs_tol})"
        )
