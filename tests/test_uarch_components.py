"""Unit tests for predictor, timing, registers, CUs, hierarchy."""

import pytest

from repro.uarch.branch import BimodalPredictor
from repro.uarch.cache import Cache
from repro.uarch.cu import CacheSizeCU, IssueQueueCU, ReorderBufferCU
from repro.uarch.hierarchy import CacheHierarchy, InstructionCacheModel
from repro.uarch.registers import ControlRegisterFile, ReconfigurationGuard
from repro.uarch.timing import TimingModel, TimingParams

KB = 1024


class TestBimodalPredictor:
    def test_learns_always_taken(self):
        predictor = BimodalPredictor(entries=64)
        pc = 0x4000
        for _ in range(4):
            predictor.predict_and_update(pc, True)
        predictor.reset_stats()
        for _ in range(100):
            predictor.predict_and_update(pc, True)
        assert predictor.mispredictions == 0

    def test_loop_pattern_one_mispredict_per_exit(self):
        predictor = BimodalPredictor(entries=64)
        pc = 0x4000
        predictor.reset_stats()
        # 10 iterations taken, then 1 not-taken exit, repeated.
        mispredicts = 0
        for _ in range(20):
            for _ in range(10):
                mispredicts += predictor.predict_and_update(pc, True)
            mispredicts += predictor.predict_and_update(pc, False)
        # Counter saturates taken; only exits mispredict.
        assert mispredicts <= 21

    def test_alternating_branch_mispredicts_heavily(self):
        predictor = BimodalPredictor(entries=64, init_counter=2)
        pc = 0x4000
        outcome = True
        wrong = 0
        for _ in range(200):
            wrong += predictor.predict_and_update(pc, outcome)
            outcome = not outcome
        assert wrong > 60

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            BimodalPredictor(entries=100)

    def test_distinct_pcs_use_distinct_counters(self):
        predictor = BimodalPredictor(entries=64)
        predictor.predict_and_update(0x0, False)
        predictor.predict_and_update(0x0, False)
        # 0x0 is now strongly not-taken; 0x4 (different index) still
        # predicts taken from initialisation.
        assert predictor.predict_and_update(0x0, True) is True
        assert predictor.predict_and_update(0x4, True) is False


class TestTimingModel:
    def test_base_cycles(self):
        timing = TimingModel(TimingParams())
        cycles = timing.cycles_for_block(40, 0, 0, 0)
        assert cycles == pytest.approx(40 * 0.4)

    def test_miss_penalties_accumulate(self):
        params = TimingParams()
        timing = TimingModel(params)
        base = timing.cycles_for_block(40, 0, 0, 0)
        with_misses = timing.cycles_for_block(40, 2, 1, 0)
        expected = (
            2 * params.l2_hit_latency / params.mlp
            + params.memory_latency / params.mlp
        )
        assert with_misses - base == pytest.approx(expected)

    def test_serialized_blocks_lose_mlp(self):
        timing = TimingModel(TimingParams())
        overlapped = timing.cycles_for_block(40, 4, 0, 0, serialized=False)
        serial = timing.cycles_for_block(40, 4, 0, 0, serialized=True)
        assert serial > overlapped

    def test_mispredict_penalty(self):
        params = TimingParams()
        timing = TimingModel(params)
        delta = timing.cycles_for_block(10, 0, 0, 1) - (
            timing.cycles_for_block(10, 0, 0, 0)
        )
        assert delta == pytest.approx(params.mispredict_penalty)

    def test_flush_penalty(self):
        timing = TimingModel(TimingParams(flush_cycles_per_line=4.0))
        assert timing.flush_penalty(10) == pytest.approx(40.0)

    def test_issue_queue_scaling_slows_execution(self):
        timing = TimingModel(TimingParams())
        full = timing.cycles_for_block(100, 0, 0, 0)
        timing.set_issue_queue_size(16)
        shrunk = timing.cycles_for_block(100, 0, 0, 0)
        assert shrunk > full
        assert timing.ilp_factor == pytest.approx(0.5)

    def test_ilp_floor(self):
        timing = TimingModel(TimingParams())
        timing.set_rob_size(1)
        assert timing.ilp_factor == 0.5

    def test_param_validation(self):
        with pytest.raises(ValueError):
            TimingParams(mlp=0.5)
        with pytest.raises(ValueError):
            TimingParams(issue_width=0)


class TestReconfigurationGuard:
    def test_first_request_granted(self):
        guard = ReconfigurationGuard()
        guard.register("L1D", 1000)
        assert guard.request("L1D", 500) is True

    def test_too_frequent_denied(self):
        guard = ReconfigurationGuard()
        guard.register("L1D", 1000)
        guard.request("L1D", 0)
        assert guard.request("L1D", 999) is False
        assert guard.denied["L1D"] == 1

    def test_after_interval_granted(self):
        guard = ReconfigurationGuard()
        guard.register("L1D", 1000)
        guard.request("L1D", 0)
        assert guard.request("L1D", 1000) is True

    def test_would_grant_does_not_consume(self):
        guard = ReconfigurationGuard()
        guard.register("L2", 100)
        guard.request("L2", 0)
        assert guard.would_grant("L2", 100) is True
        assert guard.last_reconfiguration("L2") == 0

    def test_unknown_cu_rejected(self):
        guard = ReconfigurationGuard()
        with pytest.raises(KeyError):
            guard.request("nope", 0)

    def test_independent_cus(self):
        guard = ReconfigurationGuard()
        guard.register("A", 1000)
        guard.register("B", 10)
        guard.request("A", 0)
        guard.request("B", 0)
        assert guard.request("B", 10) is True
        assert guard.request("A", 10) is False


class TestControlRegisters:
    def test_write_read(self):
        regs = ControlRegisterFile()
        regs.define("L1D", 0)
        regs.write("L1D", 3)
        assert regs.read("L1D") == 3
        assert regs.writes == 1

    def test_undefined_register_rejected(self):
        regs = ControlRegisterFile()
        with pytest.raises(KeyError):
            regs.write("ghost", 1)


class TestConfigurableUnits:
    def test_cache_cu_resizes_cache(self):
        cache = Cache("L1D", 8 * KB, 64, 2, sizes=(8 * KB, 4 * KB))
        cu = CacheSizeCU(cache, reconfiguration_interval=1000)
        assert cu.current_setting == 8 * KB
        cache.access(0x0, is_store=True)
        cost = cu.apply(1)
        assert cache.size == 4 * KB
        # Dirty line in set 0 survives the shrink (surviving set).
        assert cost.dirty_lines == 0

    def test_cache_cu_reports_flushed_dirty(self):
        cache = Cache("L1D", 8 * KB, 64, 2, sizes=(8 * KB, 1 * KB))
        cu = CacheSizeCU(cache, 1000)
        high_set_addr = (1 * KB // (64 * 2)) * 64
        cache.access(high_set_addr, is_store=True)
        cost = cu.apply(1)
        assert cost.dirty_lines == 1
        assert cost.writeback_lines == (high_set_addr & ~63,)

    def test_reapply_current_is_free(self):
        cache = Cache("L1D", 8 * KB, 64, 2)
        cu = CacheSizeCU(cache, 1000)
        cost = cu.apply(0)
        assert cost.dirty_lines == 0 and cost.drain_cycles == 0

    def test_out_of_range_index(self):
        cache = Cache("L1D", 8 * KB, 64, 2)
        cu = CacheSizeCU(cache, 1000)
        with pytest.raises(IndexError):
            cu.apply(5)

    def test_iq_cu_drives_timing(self):
        timing = TimingModel()
        cu = IssueQueueCU(timing, 100)
        cu.apply(3)  # 16 entries
        assert timing.ilp_factor == pytest.approx(0.5)
        assert cu.describe_setting(3) == "16-entry"

    def test_rob_cu_drain_cost(self):
        timing = TimingModel()
        cu = ReorderBufferCU(timing, 100, drain_cycles=48.0)
        cost = cu.apply(1)
        assert cost.drain_cycles == 48.0


class TestHierarchy:
    def make(self):
        l1 = Cache("L1D", 1 * KB, 64, 2, sizes=(1 * KB,))
        l2 = Cache("L2", 16 * KB, 128, 4, sizes=(16 * KB,))
        return CacheHierarchy(l1, l2)

    def test_l1_miss_fetches_from_l2(self):
        hierarchy = self.make()
        traffic = hierarchy.data_access([0x1000], [])
        assert traffic.l1_misses == 1
        assert traffic.l2_result is not None
        assert traffic.l2_misses == 1
        assert hierarchy.memory_reads == 1

    def test_l1_hit_skips_l2(self):
        hierarchy = self.make()
        hierarchy.data_access([0x1000], [])
        traffic = hierarchy.data_access([0x1000], [])
        assert traffic.l1_misses == 0
        assert traffic.l2_result is None

    def test_l1_writeback_lands_in_l2(self):
        hierarchy = self.make()
        n_sets = hierarchy.l1d.n_sets
        a, b, c = (0x10000 + i * n_sets * 64 for i in range(3))
        hierarchy.data_access([], [a])  # dirty
        hierarchy.data_access([b], [])
        l2_writes_before = hierarchy.l2.stats.write_accesses
        hierarchy.data_access([c], [])  # evicts dirty a -> L2 write
        assert hierarchy.l2.stats.write_accesses == l2_writes_before + 1

    def test_flush_l1d_routes_dirty_to_l2(self):
        hierarchy = self.make()
        hierarchy.data_access([], [0x5000])
        before = hierarchy.l2.stats.write_accesses
        dirty = hierarchy.flush_l1d()
        assert len(dirty) == 1
        assert hierarchy.l2.stats.write_accesses == before + 1


class TestInstructionCacheModel:
    def test_first_touch_misses_then_resident(self):
        icache = InstructionCacheModel(size=1 * KB, line_size=64)
        misses = icache.touch("m", 256)
        assert misses == 256 // 64
        assert icache.touch("m", 256) == 0

    def test_capacity_evicts_lru(self):
        icache = InstructionCacheModel(size=512, line_size=64)
        icache.touch("a", 256)
        icache.touch("b", 256)
        icache.touch("c", 256)  # evicts a
        assert icache.touch("b", 256) == 0  # still resident
        assert icache.touch("a", 256) > 0   # was evicted

    def test_oversized_method_clamped(self):
        icache = InstructionCacheModel(size=512, line_size=64)
        assert icache.touch("big", 10_000) == 512 // 64
