"""Additional VM behaviour tests: preloading, quantum, detection edges."""

from repro.sim.config import MachineConfig, build_machine
from repro.vm.hotspot import DODatabase
from repro.vm.vm import AdaptationHooks, VMConfig, VirtualMachine
from tests.conftest import make_loop_program, make_two_tier_program


class DetectionRecorder(AdaptationHooks):
    def __init__(self):
        self.detected = []

    def on_hotspot_detected(self, hotspot, vm):
        self.detected.append(
            (hotspot.name, vm.machine.instructions)
        )


class TestPreloading:
    def make_database(self):
        vm = VirtualMachine(
            make_loop_program(),
            build_machine(MachineConfig()),
            config=VMConfig(hot_threshold=3),
        )
        vm.run(60_000)
        assert "work" in vm.database.hotspots
        return DODatabase.from_dict(vm.database.to_dict())

    def test_preloaded_hotspots_announced_before_execution(self):
        preload = self.make_database()
        policy = DetectionRecorder()
        VirtualMachine(
            make_loop_program(),
            build_machine(MachineConfig()),
            policy=policy,
            config=VMConfig(hot_threshold=3),
            preload_database=preload,
        )
        # Announced at construction time, before any instruction ran.
        assert ("work", 0) in policy.detected

    def test_preloaded_hotspot_instrumented_from_first_invocation(self):
        preload = self.make_database()
        entries = []

        class StubPolicy(AdaptationHooks):
            def on_hotspot_detected(self, hotspot, vm):
                from repro.vm.jit import EntryStub

                vm.jit.patch_entry(
                    hotspot.name,
                    EntryStub(
                        "t",
                        lambda info, act, vm_: entries.append(
                            vm_.database.profile(info.name).invocations
                        ),
                    ),
                )

        vm = VirtualMachine(
            make_loop_program(),
            build_machine(MachineConfig()),
            policy=StubPolicy(),
            config=VMConfig(hot_threshold=3),
            preload_database=preload,
        )
        vm.run(20_000)
        assert entries and entries[0] == 1  # very first invocation

    def test_preload_with_unknown_methods_is_safe(self):
        database = DODatabase()
        profile = database.profile("ghost_method")
        profile.mean_size = 1000.0
        profile.completed_invocations = 5
        profile.is_hot = True
        preload = DODatabase.from_dict(database.to_dict())
        policy = DetectionRecorder()
        vm = VirtualMachine(
            make_loop_program(),
            build_machine(MachineConfig()),
            policy=policy,
            config=VMConfig(hot_threshold=3),
            preload_database=preload,
        )
        vm.run(10_000)
        # Ghost methods are not announced (not in this program).
        assert all(name != "ghost_method" for name, _ in policy.detected)


class TestDetectionEdges:
    def test_threshold_one_promotes_on_second_invocation(self):
        policy = DetectionRecorder()
        vm = VirtualMachine(
            make_loop_program(),
            build_machine(MachineConfig()),
            policy=policy,
            config=VMConfig(hot_threshold=1),
        )
        vm.run(30_000)
        assert policy.detected
        # Promotion needs one *completed* invocation for a size estimate,
        # so it fires on the second entry.
        assert vm.database.profile("work").detected_at_invocation == 2

    def test_detection_time_recorded(self):
        policy = DetectionRecorder()
        vm = VirtualMachine(
            make_loop_program(),
            build_machine(MachineConfig()),
            policy=policy,
            config=VMConfig(hot_threshold=5),
        )
        vm.run(60_000)
        name, at = policy.detected[0]
        assert name == "work"
        info = vm.database.hotspots["work"]
        assert info.detected_at_instructions == at
        assert at > 0


class TestQuantum:
    def test_budget_respected_with_large_quantum(self):
        vm = VirtualMachine(
            make_loop_program(),
            build_machine(MachineConfig()),
            config=VMConfig(quantum_blocks=100_000),
        )
        vm.run(15_000)
        # The budget check runs inside the quantum loop.
        assert vm.machine.instructions < 15_500

    def test_small_quantum_interleaves_finely(self):
        seen = []

        class ThreadRecorder(AdaptationHooks):
            def on_block(self, event, machine):
                if not seen or seen[-1] != event.thread_id:
                    seen.append(event.thread_id)

        vm = VirtualMachine(
            make_loop_program(),
            build_machine(MachineConfig()),
            policy=ThreadRecorder(),
            config=VMConfig(quantum_blocks=10),
            thread_entries=["main", "main"],
        )
        vm.run(30_000)
        assert len(seen) > 10  # many switches


class TestInstructionsInsideHotspots:
    def test_nested_hotspot_coverage_not_double_counted(self):
        vm = VirtualMachine(
            make_two_tier_program(),
            build_machine(MachineConfig()),
            config=VMConfig(hot_threshold=3),
        )
        vm.run(200_000)
        assert (
            vm.stats.instructions_in_hotspots <= vm.machine.instructions
        )
        # Both tiers are hot, so coverage is near-total.
        assert (
            vm.stats.instructions_in_hotspots
            > 0.8 * vm.machine.instructions
        )
