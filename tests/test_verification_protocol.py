"""Exhaustive unit coverage of the A/B verification state machine."""

from repro.core.tuning import (
    HotspotTuningState,
    TuningOutcome,
    make_config_list,
)


def outcome(config, ipc, energy=1.0):
    return TuningOutcome(config, ipc, energy, 1000)


def configured_state(best_index=1, n=4):
    state = HotspotTuningState("hs", ("L1D",), make_config_list([n]))
    # Drive tuning to completion with the target config cheapest.
    for i in range(n):
        if state.phase.value != "tuning":
            break
        energy = 0.1 if i == best_index else 1.0
        state.record(outcome((i,), 2.0, energy), 0.5)
    assert state.best.config == (best_index,)
    return state


class TestVerificationStages:
    def test_stage_progression(self):
        state = configured_state()
        k = 2
        assert state.verify_stage == "chosen"
        state.record_verification(2.0, k, 0.02)
        assert state.verify_stage == "chosen"
        state.record_verification(2.0, k, 0.02)
        assert state.verify_stage == "max"
        assert state.verification_target() == (0,)

    def test_targets_by_stage(self):
        state = configured_state(best_index=2)
        assert state.verification_target() == (2,)
        state.verify_stage = "max"
        assert state.verification_target() == (0,)

    def test_not_pending_short_circuits(self):
        state = configured_state()
        state.verify_pending = False
        assert state.record_verification(2.0, 2, 0.02) == "verified"

    def test_demotion_resets_cycle(self):
        state = configured_state(best_index=3)
        k = 2
        for _ in range(k):
            state.record_verification(1.0, k, 0.02)  # chosen slow
        result = None
        for _ in range(k):
            result = state.record_verification(2.0, k, 0.02)
        assert result == "demoted"
        assert state.best.config == (2,)
        assert state.verify_pending
        assert state.verify_stage == "chosen"
        assert state.verify_samples == {"chosen": [], "max": []}
        assert state.verify_passes == 0

    def test_repeated_demotion_reaches_maximum(self):
        state = configured_state(best_index=3)
        k = 1
        for _ in range(8):  # 3 demotions x 2 stages + final short-circuit
            if not state.verify_pending:
                break
            stage = state.verify_stage
            ipc = 1.0 if stage == "chosen" else 2.0
            state.record_verification(ipc, k, 0.02)
        assert state.best.config == (0,)
        assert not state.verify_pending
        assert state.demotions == 3

    def test_pass_increments_counter(self):
        state = configured_state()
        k = 1
        state.record_verification(2.0, k, 0.02)
        result = state.record_verification(2.0, k, 0.02)
        assert result == "verified"
        assert state.verify_passes == 1

    def test_noise_tolerance_via_stderr(self):
        # Chosen loses by 3% but with high variance: tolerated.
        state = configured_state()
        k = 4
        for ipc in (1.90, 2.10, 1.95, 2.02):
            state.record_verification(ipc, k, 0.02)
        result = None
        for ipc in (2.05, 2.00, 2.12, 1.98):
            result = state.record_verification(ipc, k, 0.02)
        assert result == "verified"

    def test_clear_loss_with_low_variance_demotes(self):
        state = configured_state()
        k = 4
        for ipc in (1.80, 1.81, 1.79, 1.80):
            state.record_verification(ipc, k, 0.02)
        result = None
        for ipc in (2.00, 2.01, 1.99, 2.00):
            result = state.record_verification(ipc, k, 0.02)
        assert result == "demoted"


class TestRestartInteraction:
    def test_restart_cancels_verification(self):
        state = configured_state()
        assert state.verify_pending
        state.restart()
        assert not state.verify_pending
        assert state.verify_passes == 0
        assert state.phase.value == "tuning"

    def test_retuning_after_verification_pass(self):
        state = configured_state()
        k = 1
        state.record_verification(2.0, k, 0.02)
        state.record_verification(2.0, k, 0.02)
        assert not state.verify_pending
        # Drift path: observe degraded steady-state IPC.
        for _ in range(40):
            state.observe_configured_ipc(0.5)
        assert state.drift_exceeds(0.4)
        state.restart()
        assert state.current_trial == (0,)
