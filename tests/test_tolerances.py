"""Unit tests for the tolerance-testing toolkit (tests/tolerances.py).

The toolkit is itself test infrastructure, so it gets the same
treatment as any other subsystem: the semantics promised in its
docstring — zero baselines, relative vs absolute budgets, NaN pairs —
are pinned here, not just relied upon.
"""

from __future__ import annotations

import math

import pytest

from tests.tolerances import (
    DeviationReport,
    assert_within_tolerance,
    describe_divergence,
    first_divergence,
)

NAN = float("nan")


class TestAssertWithinTolerance:
    def test_exact_match_passes_with_zero_tolerance(self):
        assert_within_tolerance("cell", "ipc", 1.25, 1.25, rel_tol=0.0)

    def test_relative_budget_scales_with_baseline(self):
        # 1% of 200 is 2.0 — a deviation of 1.9 fits, 2.1 does not.
        assert_within_tolerance("cell", "cycles", 200.0, 201.9, rel_tol=0.01)
        with pytest.raises(AssertionError, match="cycles"):
            assert_within_tolerance(
                "cell", "cycles", 200.0, 202.1, rel_tol=0.01
            )

    def test_absolute_floor_adds_to_relative_budget(self):
        # rel alone fails, rel + abs floor passes: the budget is the sum.
        with pytest.raises(AssertionError):
            assert_within_tolerance("cell", "m", 10.0, 10.5, rel_tol=0.01)
        assert_within_tolerance(
            "cell", "m", 10.0, 10.5, rel_tol=0.01, abs_tol=0.45
        )

    def test_zero_baseline_needs_absolute_floor(self):
        # With baseline 0 the relative term contributes nothing: any
        # nonzero candidate fails a purely-relative tolerance...
        with pytest.raises(AssertionError):
            assert_within_tolerance("cell", "wb", 0.0, 1e-9, rel_tol=0.5)
        # ...and only the absolute floor admits it.
        assert_within_tolerance(
            "cell", "wb", 0.0, 1e-9, rel_tol=0.5, abs_tol=1e-6
        )
        assert_within_tolerance("cell", "wb", 0.0, 0.0, rel_tol=0.0)

    def test_both_nan_is_equal(self):
        # A metric undefined in both runs (e.g. miss rate with zero
        # accesses) is agreement, not a deviation.
        assert_within_tolerance("cell", "rate", NAN, NAN, rel_tol=0.0)

    def test_single_nan_always_fails(self):
        for baseline, candidate in ((NAN, 1.0), (1.0, NAN)):
            with pytest.raises(AssertionError):
                assert_within_tolerance(
                    "cell", "rate", baseline, candidate,
                    rel_tol=1e9, abs_tol=1e9,
                )

    def test_negative_baseline_uses_magnitude(self):
        assert_within_tolerance("cell", "delta", -100.0, -101.0, rel_tol=0.02)
        with pytest.raises(AssertionError):
            assert_within_tolerance(
                "cell", "delta", -100.0, -103.0, rel_tol=0.02
            )

    def test_failure_message_names_cell_metric_and_values(self):
        with pytest.raises(AssertionError) as excinfo:
            assert_within_tolerance("db/baseline", "l2_miss_rate", 0.25, 0.5,
                                    rel_tol=0.01)
        message = str(excinfo.value)
        assert "db/baseline" in message
        assert "l2_miss_rate" in message
        assert "0.25" in message and "0.5" in message

    def test_failures_are_recorded_in_the_shared_report(self):
        report = DeviationReport()
        with pytest.raises(AssertionError):
            assert_within_tolerance(
                "cell", "m", 1.0, 2.0, rel_tol=0.1, report=report
            )
        assert len(report.failures()) == 1


class TestDeviationReport:
    def test_budget_used_is_fraction_of_allowance(self):
        report = DeviationReport()
        deviation = report.record("c", "m", 100.0, 101.0, rel_tol=0.02)
        assert deviation.ok
        assert deviation.budget == pytest.approx(0.5)

    def test_worst_ranks_by_budget_not_raw_deviation(self):
        report = DeviationReport()
        # 10% deviation against a 50% budget: 0.2 of budget.
        report.record("c", "loose", 1.0, 1.1, rel_tol=0.5)
        # 0.9% deviation against a 1% budget: 0.9 of budget — worse.
        report.record("c", "tight", 1.0, 1.009, rel_tol=0.01)
        assert [d.metric for d in report.worst(2)] == ["loose", "tight"][::-1]

    def test_render_reports_verdict_and_failures_first(self):
        report = DeviationReport()
        report.record("a", "fine", 1.0, 1.0, rel_tol=0.0)
        report.record("b", "broken", 1.0, 3.0, rel_tol=0.1)
        text = report.render()
        assert "2 tolerance checks, 1 exceeded" in text
        assert text.index("broken") < text.index("fine")
        assert "EXCEEDED" in text

    def test_to_json_is_serialisable_even_with_nan(self):
        import json

        report = DeviationReport()
        report.record("c", "rate", NAN, 1.0, rel_tol=0.1)
        report.record("c", "zero", 0.0, 1.0, rel_tol=0.1)
        payload = json.loads(json.dumps(report.to_json()))
        assert payload["checks"] == 2
        assert payload["failures"] == 2

    def test_zero_allowance_zero_deviation_is_ok(self):
        report = DeviationReport()
        deviation = report.record("c", "m", 0.0, 0.0, rel_tol=0.0)
        assert deviation.ok and deviation.budget == 0.0


class TestFirstDivergence:
    # The exact-diff helpers moved here from tests/equivalence.py; the
    # re-export is pinned alongside the behaviour.
    def test_reexported_from_equivalence(self):
        from tests import equivalence

        assert equivalence.first_divergence is first_divergence
        assert equivalence.describe_divergence is describe_divergence

    def test_names_the_path_of_the_first_leaf(self):
        a = {"x": [1, {"y": 2.0}], "z": "s"}
        b = {"x": [1, {"y": 2.5}], "z": "s"}
        assert first_divergence(a, b) == ("$.x[1].y", 2.0, 2.5)

    def test_missing_keys_and_length_mismatches(self):
        assert first_divergence({"k": 1}, {}) == ("$.k", 1, "<absent>")
        assert first_divergence([1], [1, 2]) == ("$.length", 1, 2)

    def test_int_float_cross_type_compares_by_value(self):
        assert first_divergence({"n": 1}, {"n": 1.0}) is None
        assert first_divergence(True, 1) == ("$", True, 1)

    def test_equal_trees_return_none(self):
        tree = {"a": [1, 2, {"b": math.pi}]}
        assert first_divergence(tree, dict(tree)) is None
