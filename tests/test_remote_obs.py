"""Distributed telemetry across the pool boundary (docs/INTERNALS.md §15).

The contract under test: a live parent telemetry session makes every
backend ship worker-side capture back on the chunk reply, clock-rebased
into one merged timeline — and none of it may ever change what a cell
computes.  Plus the satellites: remote tracebacks on failures, unarmed
timeouts surfaced through chunk telemetry, truncation accounting, the
progress heartbeat, and the flight-recorder manifest.
"""

from __future__ import annotations

import pickle
import threading

import pytest

from repro.faults import FaultPlan
from repro.obs import (
    CELL_EXEC,
    CONFIG_PINNED,
    PROGRESS,
    TIMEOUT_DISABLED,
    FlightRecorder,
    Telemetry,
)
from repro.obs.export import chrome_trace
from repro.obs.registry import MetricsRegistry
from repro.obs.remote import (
    SNAPSHOT_VERSION,
    _monotone,
    merge_metrics,
    rebase_start_us,
    snapshot_metrics,
)
from repro.sim.config import ExperimentConfig
from repro.sim.driver import RunSpec
from repro.sim.engine import Engine
from repro.sim.pools.worker import picklable, run_chunk

BUDGET = 60_000

#: Same conformance rows as tests/test_backends.py: one per backend kind.
BACKENDS = ("serial", "local:2", "ssh-loopback:2")


def config(**kwargs) -> ExperimentConfig:
    return ExperimentConfig(max_instructions=BUDGET, **kwargs)


def grid(cfg) -> list:
    return [
        RunSpec(name, scheme, cfg)
        for name in ("db", "jess")
        for scheme in ("baseline", "hotspot")
    ]


@pytest.fixture(scope="module")
def reference():
    """Ground truth: the grid run serially with telemetry off."""
    return (
        Engine(pool="serial", use_cache=False, memory_cache={})
        .run(grid(config()))
        .values()
    )


class TestBitIdentity:
    """Telemetry-on must equal telemetry-off on every backend."""

    @pytest.mark.parametrize("spec", BACKENDS)
    def test_capture_never_changes_results(self, spec, reference):
        telemetry = Telemetry()
        with Engine(
            pool=spec, use_cache=False, memory_cache={}, telemetry=telemetry
        ) as engine:
            produced = engine.run(grid(config())).values()
        assert produced == reference

    def test_truncated_capture_still_bit_identical(self, reference):
        telemetry = Telemetry()
        with Engine(
            pool="local:2",
            use_cache=False,
            memory_cache={},
            telemetry=telemetry,
            remote_capture_events=4,
        ) as engine:
            produced = engine.run(grid(config())).values()
        assert produced == reference
        assert engine.stats.remote_events_dropped > 0


class TestMergedTrace:
    """Structure of the clock-aligned merged session."""

    @pytest.fixture(scope="class")
    def traced(self):
        telemetry = Telemetry()
        cfg = ExperimentConfig(max_instructions=300_000)
        with Engine(
            pool="local:2",
            use_cache=False,
            memory_cache={},
            telemetry=telemetry,
        ) as engine:
            batch = engine.run(
                [RunSpec("db", s, cfg) for s in ("baseline", "hotspot")]
            )
            stats = engine.stats
        assert all(o.ok for o in batch)
        return telemetry, stats

    def test_worker_tuning_events_land_on_remote_tracks(self, traced):
        telemetry, _ = traced
        remote = [t for t in telemetry.log.tracks() if "|" in t]
        assert remote, "no worker-side tracks were merged"
        # Track shape: origin|c{index}:{bench}/{scheme}|{sim track}
        origin, cell, sim_track = remote[0].split("|")
        assert "#" in origin
        assert cell.startswith("c") and "/" in cell
        assert sim_track
        pinned = telemetry.log.by_name(CONFIG_PINNED)
        assert pinned, "worker tuning decisions did not reach the parent"
        assert all("|" in e.track for e in pinned)

    def test_cell_exec_spans_on_host_tracks(self, traced):
        telemetry, _ = traced
        spans = telemetry.log.by_name(CELL_EXEC)
        assert len(spans) == 2  # one per cell
        for span in spans:
            assert span.track.startswith("host:")
            assert span.dur > 0
            assert "#" in span.args["origin"]
        assert {s.args["scheme"] for s in spans} == {"baseline", "hotspot"}
        assert {s.args["status"] for s in spans} == {"ok"}

    def test_every_track_is_monotone(self, traced):
        telemetry, _ = traced
        last: dict = {}
        for event in telemetry.log:
            floor = last.get(event.track)
            assert floor is None or event.ts >= floor, (
                f"track {event.track!r} stepped backwards at {event.name}"
            )
            last[event.track] = event.ts

    def test_chrome_trace_gets_per_worker_processes(self, traced):
        telemetry, _ = traced
        trace = chrome_trace(telemetry)
        events = trace["traceEvents"]
        pids = {e["pid"] for e in events}
        assert pids >= {1, 2, 3}  # sim, engine, >=1 worker process
        worker_names = [
            e["args"]["name"]
            for e in events
            if e.get("ph") == "M"
            and e["name"] == "process_name"
            and e["pid"] >= 3
        ]
        assert worker_names
        assert all(n.startswith("worker ") for n in worker_names)
        # Remote sim events carry their worker's pid, not the parent's.
        remote = [
            e for e in events
            if e.get("ph") != "M" and e["name"] == "config_pinned"
        ]
        assert remote
        assert all(e["pid"] >= 3 for e in remote)

    def test_worker_metrics_aggregate_into_parent(self, traced):
        telemetry, _ = traced
        names = telemetry.metrics.names()
        worker_side = [
            n for n in names
            if n.startswith(("policy.", "vm.", "bbv.", "machine.", "blockjit."))
        ]
        assert worker_side, "worker metrics were not folded into the parent"
        assert telemetry.metrics.counter("vm.hotspots_detected").value > 0

    def test_zero_cap_disables_worker_capture(self):
        telemetry = Telemetry()
        with Engine(
            pool="local:2",
            use_cache=False,
            memory_cache={},
            telemetry=telemetry,
            remote_capture_events=0,
        ) as engine:
            engine.run(grid(config()))
        assert not [t for t in telemetry.log.tracks() if "|" in t]
        assert engine.stats.remote_events_dropped == 0


class _IdentityAxis:
    """Telemetry stub whose wall axis is the identity function."""

    def wall_to_us(self, wall: float) -> float:
        return wall


class TestClockRebase:
    def _info(self, wall_start: float, elapsed_us: float) -> dict:
        return {"wall_start": wall_start, "elapsed_us": elapsed_us}

    def test_estimate_inside_window_is_kept(self):
        assert rebase_start_us(
            _IdentityAxis(), self._info(500.0, 100.0), 400.0, 700.0
        ) == 500.0

    def test_estimate_before_submission_is_clamped_up(self):
        # The chunk cannot have started before it was submitted.
        assert rebase_start_us(
            _IdentityAxis(), self._info(100.0, 100.0), 400.0, 700.0
        ) == 400.0

    def test_estimate_too_late_is_clamped_down(self):
        # The measured duration must fit before the reply receipt.
        assert rebase_start_us(
            _IdentityAxis(), self._info(900.0, 100.0), 400.0, 700.0
        ) == 600.0

    def test_degenerate_window_collapses_to_submission(self):
        # elapsed > receipt - submitted: the only feasible point is the
        # submission instant.
        assert rebase_start_us(
            _IdentityAxis(), self._info(500.0, 400.0), 400.0, 450.0
        ) == 400.0

    def test_monotone_clamps_and_advances(self):
        hwm: dict = {}
        assert _monotone(hwm, "t", 10.0) == 10.0
        assert _monotone(hwm, "t", 5.0) == 10.0  # clamped to high water
        assert _monotone(hwm, "t", 12.0) == 12.0
        assert _monotone(hwm, "other", 1.0) == 1.0  # tracks independent


class TestMetricsSnapshot:
    def _populated(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.gauge("g").set(7.5)
        hist = registry.histogram("h", [1.0, 10.0])
        hist.observe(0.5)
        hist.observe(5.0)
        hist.observe(50.0)
        return registry

    def test_round_trip_into_fresh_registry(self):
        snap = snapshot_metrics(self._populated())
        # The snapshot is wire-safe plain data.
        pickle.dumps(snap)
        parent = MetricsRegistry()
        merge_metrics(parent, snap)
        assert parent.counter("c").value == 3
        assert parent.gauge("g").value == 7.5
        hist = parent.histogram("h", [1.0, 10.0])
        assert hist.count == 3
        assert hist.total == 55.5
        assert hist.min == 0.5
        assert hist.max == 50.0
        assert list(hist.bucket_counts) == [1, 1, 1]

    def test_merging_twice_accumulates_counters(self):
        snap = snapshot_metrics(self._populated())
        parent = MetricsRegistry()
        merge_metrics(parent, snap)
        merge_metrics(parent, snap)
        assert parent.counter("c").value == 6
        assert parent.histogram("h", [1.0, 10.0]).count == 6

    def test_kind_clash_is_skipped(self):
        parent = MetricsRegistry()
        parent.gauge("c").set(1.0)
        merge_metrics(parent, {"c": ("counter", 5)})
        assert parent.gauge("c").value == 1.0


class TestChunkProtocol:
    """run_chunk's payload/reply arity tolerance + unarmed accounting."""

    def _cells(self, scheme="baseline", budget=20_000):
        cfg = ExperimentConfig(max_instructions=budget)
        return ((0, RunSpec("db", scheme, cfg), 1),)

    def test_captureless_payload_gets_minimal_chunk_info(self):
        # No capture spec: the reply still carries the minimal snapshot
        # the scheduler's cost model feeds on (per-cell seconds and the
        # executor identity), but no telemetry cells.
        reply = run_chunk((self._cells(), None, None))
        assert len(reply) == 3
        _, outcomes, chunk_info = reply
        assert outcomes[0][1] == "ok"
        assert chunk_info["v"] == SNAPSHOT_VERSION
        assert chunk_info["cells"] is None
        assert chunk_info["origin"]
        ((index, seconds),) = chunk_info["cell_times"]
        assert index == 0 and seconds > 0.0
        assert chunk_info["service_s"] >= seconds

    def test_capture_payload_gets_chunk_info(self):
        # 300k instructions: enough budget for the tuner to finish a
        # walk and pin a configuration (60k only explores).
        reply = run_chunk(
            (
                self._cells("hotspot", 300_000),
                None,
                None,
                {"max_events": 2048},
            )
        )
        assert len(reply) == 3
        _, outcomes, chunk_info = reply
        assert outcomes[0][1] == "ok"
        assert chunk_info["v"] == SNAPSHOT_VERSION
        assert chunk_info["wall_end"] >= chunk_info["wall_start"]
        assert chunk_info["elapsed_us"] > 0
        (cell,) = chunk_info["cells"]
        assert cell["index"] == 0
        assert cell["benchmark"] == "db"
        assert cell["scheme"] == "hotspot"
        assert cell["status"] == "ok"
        names = {event[0] for event in cell["events"]}
        assert CONFIG_PINNED in names
        assert cell["metrics"]  # snapshot of the cell's registry
        pickle.dumps(chunk_info)  # the snapshot must be wire-safe

    def test_unarmed_timeout_rides_capture(self):
        reply: list = []
        thread = threading.Thread(
            target=lambda: reply.append(
                run_chunk(
                    (self._cells(), 30.0, None, {"max_events": 64})
                )
            )
        )
        thread.start()
        thread.join()
        _, outcomes, chunk_info = reply[0]
        assert outcomes[0][1] == "ok"
        assert chunk_info["unarmed_timeouts"] == 1
        (cell,) = chunk_info["cells"]
        assert TIMEOUT_DISABLED in {event[0] for event in cell["events"]}

    def test_unarmed_timeout_rides_even_without_capture(self):
        reply: list = []
        thread = threading.Thread(
            target=lambda: reply.append(
                run_chunk((self._cells(), 30.0, None))
            )
        )
        thread.start()
        thread.join()
        assert len(reply[0]) == 3
        _, outcomes, chunk_info = reply[0]
        assert outcomes[0][1] == "ok"
        assert chunk_info["unarmed_timeouts"] == 1
        assert chunk_info["cells"] is None  # minimal, capture-less form

    def test_engine_counts_worker_unarmed_timeouts(self):
        # Engine in a worker thread + a parallel backend: the workers
        # are fresh main threads, so SIGALRM arms fine there — but the
        # serial fallback inside a thread cannot.  Use a chunk reply
        # fabricated by the real worker path via ssh-loopback whose
        # workers run serve() on their main thread: timeouts arm, so
        # unarmed stays 0.  The positive case is the thread test above;
        # here the parent merge path is exercised directly.
        engine = Engine(pool="serial", use_cache=False, memory_cache={})
        engine._merge_worker_snapshot(
            {"v": SNAPSHOT_VERSION, "unarmed_timeouts": 3, "cells": None},
            [0],
            {0: 0.0},
        )
        assert engine.stats.timeouts_unarmed == 3

    def test_version_mismatch_degrades_to_no_telemetry(self):
        telemetry = Telemetry()
        engine = Engine(
            pool="serial",
            use_cache=False,
            memory_cache={},
            telemetry=telemetry,
        )
        engine._merge_worker_snapshot(
            {"v": 999, "unarmed_timeouts": 0, "cells": [{"bogus": 1}]},
            [0],
            {0: 0.0},
        )
        assert len(telemetry.log) == 0
        assert engine.stats.remote_events_dropped == 0


class TestPicklableTraceback:
    def test_picklable_error_keeps_traceback_through_pickle(self):
        try:
            raise ValueError("boom at depth")
        except ValueError as error:
            shipped = picklable(error)
        assert shipped is not None
        revived = pickle.loads(pickle.dumps(shipped))
        assert "ValueError: boom at depth" in revived.remote_traceback
        assert "test_remote_obs" in revived.remote_traceback

    def test_unpicklable_error_degrades_to_stand_in_with_traceback(self):
        class Unpicklable(Exception):
            def __reduce__(self):
                raise TypeError("nope")

        try:
            raise Unpicklable("cannot travel")
        except Unpicklable as error:
            shipped = picklable(error)
        assert isinstance(shipped, RuntimeError)
        assert "Unpicklable" in str(shipped)
        assert "cannot travel" in shipped.remote_traceback
        pickle.loads(pickle.dumps(shipped))

    def test_remote_failure_surfaces_traceback_in_outcome(self):
        plan = FaultPlan(seed=3, cell_exception=1.0)
        with Engine(
            pool="local:2",
            use_cache=False,
            memory_cache={},
            fault_plan=plan,
            max_retries=0,
            failure_policy="skip",
        ) as engine:
            batch = engine.run(grid(config()))
        assert batch.failures
        for outcome in batch.failures:
            assert outcome.traceback is not None
            assert "InjectedFault" in outcome.traceback


class TestProgressHeartbeat:
    def test_progress_events_and_callback_fields(self):
        telemetry = Telemetry()
        seen: list = []
        engine = Engine(
            pool="serial",
            use_cache=False,
            memory_cache={},
            telemetry=telemetry,
            progress=seen.append,
        )
        cells = grid(config())
        engine.run(cells)
        events = telemetry.log.by_name(PROGRESS)
        assert len(events) == len(cells)
        assert [e.args["done"] for e in events] == [1, 2, 3, 4]
        assert all(e.args["total"] == len(cells) for e in events)
        assert len(seen) == len(cells)
        # ETA: a uniform-rate estimate while cells remain, None at the end.
        assert all(p.eta_s is not None for p in seen[:-1])
        assert seen[-1].eta_s is None
        assert seen[-1].done == seen[-1].total == len(cells)
        assert all(p.in_flight == 0 for p in seen)  # serial path


class TestFlightRecorder:
    def test_round_trip_manifest(self, tmp_path):
        recorder = FlightRecorder(tmp_path / "run.jsonl")
        engine = Engine(
            pool="serial",
            use_cache=False,
            memory_cache={},
            recorder=recorder,
        )
        cells = grid(config())
        engine.run(cells)
        records = FlightRecorder.read(recorder.path)
        kinds = [r["kind"] for r in records]
        assert kinds[0] == "begin_batch"
        assert kinds[-1] == "end_batch"
        assert kinds.count("cell") == len(cells)
        begin = records[0]
        assert begin["backend"] == "serial"
        assert len(begin["cells"]) == len(cells)
        assert all(c["fingerprint"] for c in begin["cells"])
        end = records[-1]
        assert end["outcomes"] == {"ok": len(cells)}
        assert end["degraded"] is False
        assert end["stats"]["simulations"] == len(cells)

    def test_failures_record_error_and_traceback(self, tmp_path):
        recorder = FlightRecorder(tmp_path / "run.jsonl")

        def exploding_runner(spec):
            raise ValueError(f"no {spec.benchmark_name}")

        engine = Engine(
            pool="serial",
            use_cache=False,
            memory_cache={},
            recorder=recorder,
            runner=exploding_runner,
            max_retries=0,
            failure_policy="skip",
        )
        engine.run([RunSpec("db", "baseline", config())])
        cell_records = [
            r for r in FlightRecorder.read(recorder.path)
            if r["kind"] == "cell"
        ]
        assert len(cell_records) == 1
        record = cell_records[0]
        assert record["status"] == "failed"
        assert "no db" in record["error"]
        assert "ValueError" in record["traceback"]

    def test_aborted_batch_leaves_a_record(self, tmp_path):
        recorder = FlightRecorder(tmp_path / "run.jsonl")

        def exploding_runner(spec):
            raise ValueError("fatal")

        engine = Engine(
            pool="serial",
            use_cache=False,
            memory_cache={},
            recorder=recorder,
            runner=exploding_runner,
            max_retries=0,
        )
        with pytest.raises(Exception):
            engine.run([RunSpec("db", "baseline", config())])
        kinds = [r["kind"] for r in FlightRecorder.read(recorder.path)]
        assert kinds[0] == "begin_batch"
        assert kinds[-1] == "batch_aborted"

    def test_env_hook_attaches_a_default_recorder(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FLIGHT_DIR", str(tmp_path))
        engine = Engine(pool="serial", use_cache=False, memory_cache={})
        assert engine.recorder is not None
        assert engine.recorder.path.parent == tmp_path
        monkeypatch.delenv("REPRO_FLIGHT_DIR")
        assert Engine(
            pool="serial", use_cache=False, memory_cache={}
        ).recorder is None


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
