"""Unit tests for the energy substrate."""

import pytest

from repro.energy.model import (
    CacheEnergyModel,
    EnergyModel,
    PipelineEnergyModel,
)
from repro.energy.params import (
    DEFAULT_L1D_ENERGY,
    DEFAULT_L2_ENERGY,
    EnergyPoint,
    scaled_energy_table,
)

KB = 1024


class TestEnergyPoint:
    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            EnergyPoint(read_nj=-1, write_nj=0, leak_nj_per_cycle=0)


class TestScaling:
    def test_reference_point_is_identity(self):
        spec = DEFAULT_L1D_ENERGY
        point = spec.point(spec.ref_size)
        assert point.read_nj == pytest.approx(spec.ref.read_nj)
        assert point.leak_nj_per_cycle == pytest.approx(
            spec.ref.leak_nj_per_cycle
        )

    def test_dynamic_scales_sublinearly(self):
        spec = DEFAULT_L1D_ENERGY
        half = spec.point(spec.ref_size // 2)
        # sqrt scaling: half size => ~0.707x dynamic energy
        assert half.read_nj == pytest.approx(
            spec.ref.read_nj * 0.5 ** 0.5
        )

    def test_leakage_scales_linearly(self):
        spec = DEFAULT_L2_ENERGY
        eighth = spec.point(spec.ref_size // 8)
        assert eighth.leak_nj_per_cycle == pytest.approx(
            spec.ref.leak_nj_per_cycle / 8
        )

    def test_table_covers_all_sizes(self):
        sizes = (8 * KB, 4 * KB, 2 * KB, 1 * KB)
        table = scaled_energy_table(DEFAULT_L1D_ENERGY, sizes)
        assert set(table) == set(sizes)
        # Monotone: smaller caches burn less, per access and per cycle.
        ordered = sorted(sizes)
        for small, large in zip(ordered, ordered[1:]):
            assert table[small].read_nj < table[large].read_nj
            assert (
                table[small].leak_nj_per_cycle
                < table[large].leak_nj_per_cycle
            )


def make_model(sizes=(8 * KB, 4 * KB, 2 * KB, 1 * KB)):
    return CacheEnergyModel("L1D", DEFAULT_L1D_ENERGY, sizes, sizes[0])


class TestCacheEnergyModel:
    def test_access_accounting(self):
        model = make_model()
        model.add_accesses(10, 5)
        point = DEFAULT_L1D_ENERGY.point(8 * KB)
        expected = 10 * point.read_nj + 5 * point.write_nj
        assert model.dynamic_nj == pytest.approx(expected)

    def test_cycle_accounting(self):
        model = make_model()
        model.add_cycles(1000.0)
        point = DEFAULT_L1D_ENERGY.point(8 * KB)
        assert model.leakage_nj == pytest.approx(
            1000 * point.leak_nj_per_cycle
        )

    def test_repricing_after_set_size(self):
        model = make_model()
        model.set_size(1 * KB)
        model.add_accesses(10, 0)
        small = DEFAULT_L1D_ENERGY.point(1 * KB)
        assert model.dynamic_nj == pytest.approx(10 * small.read_nj)

    def test_reconfig_energy(self):
        model = make_model()
        model.add_reconfig_writebacks(7)
        assert model.reconfig_nj == pytest.approx(
            7 * DEFAULT_L1D_ENERGY.writeback_line_nj
        )

    def test_total_and_breakdown(self):
        model = make_model()
        model.add_accesses(1, 1)
        model.add_cycles(10)
        model.add_reconfig_writebacks(1)
        breakdown = model.breakdown()
        assert breakdown["total"] == pytest.approx(
            breakdown["dynamic"] + breakdown["leakage"]
            + breakdown["reconfig"]
        )
        assert model.total_nj == pytest.approx(breakdown["total"])

    def test_unknown_size_rejected(self):
        model = make_model()
        with pytest.raises(ValueError):
            model.set_size(3 * KB)

    def test_bad_initial_size_rejected(self):
        with pytest.raises(ValueError):
            CacheEnergyModel(
                "x", DEFAULT_L1D_ENERGY, (8 * KB,), 4 * KB
            )


class TestPipelineEnergyModel:
    def test_linear_scaling(self):
        model = PipelineEnergyModel("IQ", 64, nj_per_cycle_full=0.4)
        model.add_cycles(100)
        assert model.energy_nj == pytest.approx(40.0)
        model.set_entries(16)
        model.add_cycles(100)
        assert model.energy_nj == pytest.approx(40.0 + 10.0)


class TestEnergyModel:
    def make(self):
        l1 = make_model()
        l2 = CacheEnergyModel(
            "L2", DEFAULT_L2_ENERGY,
            (128 * KB, 64 * KB), 128 * KB,
        )
        return EnergyModel(l1, l2, memory_access_nj=15.0)

    def test_cycles_hit_both_caches(self):
        energy = self.make()
        energy.add_cycles(100)
        assert energy.l1d.leakage_nj > 0
        assert energy.l2.leakage_nj > 0

    def test_memory_energy(self):
        energy = self.make()
        energy.add_memory_accesses(4)
        assert energy.memory_nj == pytest.approx(60.0)

    def test_cache_model_lookup(self):
        energy = self.make()
        assert energy.cache_model("L1D") is energy.l1d
        assert energy.cache_model("L2") is energy.l2
        with pytest.raises(KeyError):
            energy.cache_model("L3")

    def test_totals_keys(self):
        energy = self.make()
        totals = energy.totals()
        assert set(totals) == {"L1D", "L2", "memory"}
