"""Tests for JSONL trace capture/replay."""

import io

from repro.trace.events import BlockEvent
from repro.trace.serialize import (
    capture_trace,
    event_from_dict,
    event_to_dict,
    load_trace,
    read_trace,
    save_trace,
    write_trace,
)
from repro.trace.stream import replay
from repro.uarch.cache import Cache


def make_event(**overrides):
    base = dict(
        method="m", bid="b", n_insns=12, loads=[0x100, 0x140],
        stores=[0x200], branch_pc=0x4000, taken=True,
        serialized=True, thread_id=1, block_pc=0x4000,
    )
    base.update(overrides)
    return BlockEvent(
        base["method"], base["bid"], base["n_insns"], base["loads"],
        base["stores"], base["branch_pc"], base["taken"],
        serialized=base["serialized"], thread_id=base["thread_id"],
        block_pc=base["block_pc"],
    )


def events_equal(a: BlockEvent, b: BlockEvent) -> bool:
    return all(
        getattr(a, slot) == getattr(b, slot) for slot in BlockEvent.__slots__
    )


class TestRoundTrip:
    def test_dict_round_trip(self):
        event = make_event()
        again = event_from_dict(event_to_dict(event))
        assert events_equal(event, again)

    def test_unconditional_event(self):
        event = make_event(branch_pc=None, taken=True, serialized=False)
        again = event_from_dict(event_to_dict(event))
        assert again.branch_pc is None
        assert events_equal(event, again)

    def test_stream_round_trip(self):
        events = [make_event(n_insns=i) for i in range(1, 6)]
        buffer = io.StringIO()
        assert write_trace(events, buffer) == 5
        buffer.seek(0)
        loaded = list(read_trace(buffer))
        assert len(loaded) == 5
        for original, again in zip(events, loaded):
            assert events_equal(original, again)

    def test_file_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        events = [make_event(), make_event(bid="other")]
        assert save_trace(events, path) == 2
        loaded = load_trace(path)
        assert loaded[1].bid == "other"

    def test_blank_lines_skipped(self):
        buffer = io.StringIO("\n\n")
        assert list(read_trace(buffer)) == []


class TestCapture:
    def test_capture_benchmark_trace(self):
        recorder = capture_trace("db", max_instructions=50_000)
        assert recorder.stats.instructions >= 50_000
        assert len(recorder) > 100

    def test_captured_trace_replays_identically(self):
        recorder = capture_trace("db", max_instructions=50_000)

        def run_cache():
            cache = Cache("c", 2048, 64, 2, sizes=(2048,))
            replay(
                recorder.events,
                lambda e: cache.access_many(e.loads, e.stores),
            )
            return cache.stats.snapshot()

        assert run_cache() == run_cache()

    def test_capture_custom_program(self):
        from tests.conftest import make_loop_program

        recorder = capture_trace(
            make_loop_program(), max_instructions=20_000
        )
        methods = {e.method for e in recorder}
        assert "work" in methods
