"""Tests for Markdown exhibit rendering."""

import pytest

from repro.report.exhibits import figure3, figure4, table4
from repro.report.markdown import (
    figure3_to_markdown,
    figure4_to_markdown,
    headline_to_markdown,
    per_benchmark_exhibit_to_markdown,
    render_markdown_table,
)
from repro.sim.config import ExperimentConfig
from repro.sim.experiment import run_suite


@pytest.fixture(scope="module")
def tiny_suite():
    return run_suite(
        ["db"], ExperimentConfig(max_instructions=300_000)
    )


class TestMarkdownTable:
    def test_basic_shape(self):
        text = render_markdown_table(
            ["a", "b"], [["x", 1], ["y", 2.5]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "### T"
        assert lines[2] == "| a | b |"
        assert lines[3] == "|---|---|"
        assert "| x | 1 |" in text
        assert "| y | 2.50 |" in text

    def test_width_mismatch(self):
        with pytest.raises(ValueError):
            render_markdown_table(["a"], [["x", "y"]])


class TestExhibitMarkdown:
    def test_figure3(self, tiny_suite):
        text = figure3_to_markdown(figure3(tiny_suite))
        assert "| benchmark | L1D BBV |" in text
        assert "| db |" in text
        assert "%" in text

    def test_figure4(self, tiny_suite):
        text = figure4_to_markdown(figure4(tiny_suite))
        assert "performance degradation" in text

    def test_headline(self, tiny_suite):
        text = headline_to_markdown(
            figure3(tiny_suite), figure4(tiny_suite)
        )
        assert "paper hotspot" in text
        assert "47%" in text  # the paper column is fixed

    def test_per_benchmark_generic(self, tiny_suite):
        text = per_benchmark_exhibit_to_markdown(table4(tiny_suite))
        assert "number of hotspots" in text
        assert "| db |" in text.replace("|  |", "| db |") or "db" in text

    def test_per_benchmark_rejects_flat_exhibit(self):
        from repro.report.exhibits import ExhibitResult

        flat = ExhibitResult("flat", "x", {"label": "not-a-mapping"})
        with pytest.raises(ValueError):
            per_benchmark_exhibit_to_markdown(flat)
