"""Golden-trace regression suite: one pinned cell per adaptation scheme.

The equivalence grid proves the two kernels agree *with each other*; the
golden fixtures pin what both of them compute against a committed
snapshot, so a change that moves the simulation itself — new RNG
consumption, a reordered float, a policy tweak — fails loudly with the
first diverging metric path or decision event, even though the kernels
still agree.

Each fixture (``tests/golden/db_<scheme>.json``) holds the full
:class:`RunResult` tree, the decision-event timeline (everything except
the per-invocation ``hotspot_invoke`` spans, whose count is pinned
instead), and the cell description that produced it.

Intentional simulation changes regenerate the fixtures with::

    PYTHONPATH=src python -m pytest tests/test_golden_traces.py --update-golden

and commit the resulting diff — the diff *is* the review artefact: it
shows exactly which metrics and which decisions moved.

Floats are rounded to 12 significant digits on both sides (libm ulp
jitter across CI images; see ``round_floats``).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.sim.driver import SCHEMES
from tests.equivalence import (
    decision_timeline,
    describe_divergence,
    first_divergence,
    result_tree,
    round_floats,
    run_cell,
    simulated_timeline,
)

GOLDEN_DIR = Path(__file__).parent / "golden"

#: The pinned cell: db is single-threaded and exercises every scheme's
#: full decision lifecycle (detection, tuning walk, pinning) within the
#: budget; the seed is the config default.
GOLDEN_BENCHMARK = "db"
GOLDEN_BUDGET = 400_000
GOLDEN_KERNEL = "fast"


def golden_payload(scheme: str, kernel: str = GOLDEN_KERNEL):
    """Compute the golden payload for one scheme (fast kernel — the
    equivalence grid already proves the reference kernel matches).

    Only bit-identical kernels may produce golden fixtures: a
    tolerance-gated kernel (turbo) has no byte-stable trace to pin, so
    it is refused outright rather than producing a fixture that would
    flap.
    """
    from repro.sim.driver import KERNEL_REGISTRY

    if not KERNEL_REGISTRY[kernel].bit_identical:
        raise ValueError(
            f"golden traces accept only bit-identical kernels; {kernel!r} "
            "is tolerance-gated (see tests/stat_equivalence.py)"
        )
    result, telemetry = run_cell(
        GOLDEN_BENCHMARK, scheme, kernel, max_instructions=GOLDEN_BUDGET
    )
    events = decision_timeline(telemetry)
    invokes = len(simulated_timeline(telemetry)) - len(events)
    payload = {
        "cell": {
            "benchmark": GOLDEN_BENCHMARK,
            "scheme": scheme,
            "max_instructions": GOLDEN_BUDGET,
            "sim_kernel": kernel,
        },
        "result": result_tree(result),
        "decision_events": events,
        "hotspot_invoke_count": invokes,
    }
    # Normalise tuples to lists so on-disk JSON and recomputed payloads
    # compare structurally.
    return round_floats(json.loads(json.dumps(payload)))


@pytest.mark.parametrize("scheme", SCHEMES)
def test_golden_trace(scheme, update_golden):
    path = GOLDEN_DIR / f"{GOLDEN_BENCHMARK}_{scheme}.json"
    payload = golden_payload(scheme)
    if update_golden:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
        pytest.skip(f"golden fixture rewritten: {path.name}")
    assert path.exists(), (
        f"missing golden fixture {path}; generate it with "
        "pytest tests/test_golden_traces.py --update-golden"
    )
    golden = json.loads(path.read_text())
    hit = first_divergence(golden, payload)
    if hit is not None:
        raise AssertionError(
            describe_divergence(
                f"golden {GOLDEN_BENCHMARK}/{scheme}", "golden trace", hit
            )
            + "\n(intentional change? regenerate with --update-golden "
            "and commit the diff)"
        )


def test_golden_traces_refuse_tolerance_gated_kernels():
    """Turbo (and any future non-bit-identical kernel) can neither
    produce nor back a golden fixture."""
    from repro.sim.driver import KERNEL_REGISTRY

    with pytest.raises(ValueError, match="bit-identical"):
        golden_payload("baseline", kernel="turbo")
    for path in sorted(GOLDEN_DIR.glob("*.json")):
        payload = json.loads(path.read_text())
        pinned = payload["cell"]["sim_kernel"]
        assert KERNEL_REGISTRY[pinned].bit_identical, path.name


def test_golden_fixtures_are_self_described():
    """Every committed fixture names the cell that produced it (so a
    reader can rerun it without reverse-engineering the test)."""
    fixtures = sorted(GOLDEN_DIR.glob("*.json"))
    assert len(fixtures) == len(SCHEMES)
    for path in fixtures:
        payload = json.loads(path.read_text())
        cell = payload["cell"]
        assert cell["benchmark"] == GOLDEN_BENCHMARK
        assert cell["max_instructions"] == GOLDEN_BUDGET
        assert payload["decision_events"], path.name
