"""Edge cases and failure injection across the stack."""

import pytest

from repro.core.framework import ACEFramework
from repro.core.policy import HotspotACEPolicy
from repro.isa.builder import ProgramBuilder
from repro.sim.config import ExperimentConfig, MachineConfig, build_machine
from repro.trace.events import BlockEvent
from repro.uarch.cache import Cache
from repro.vm.vm import VMConfig, VirtualMachine
from repro.workloads.specjvm import build_benchmark
from tests.conftest import make_loop_program

KB = 1024


def single_block_program():
    return (
        ProgramBuilder(entry="main")
        .method("main").ret("only", insns=5).done()
        .build()
    )


class TestTinyPrograms:
    def test_single_block_program_terminates(self):
        vm = VirtualMachine(
            single_block_program(),
            build_machine(MachineConfig()),
            config=VMConfig(),
        )
        vm.run(1_000_000)
        assert vm.threads[0].finished
        assert vm.machine.instructions == 5

    def test_budget_smaller_than_program(self):
        vm = VirtualMachine(
            make_loop_program(),
            build_machine(MachineConfig()),
            config=VMConfig(),
        )
        vm.run(1)
        assert vm.machine.instructions >= 1

    def test_policy_on_program_with_no_hotspots(self):
        policy = HotspotACEPolicy()
        vm = VirtualMachine(
            single_block_program(),
            build_machine(MachineConfig()),
            policy=policy,
            config=VMConfig(hot_threshold=4),
        )
        vm.run(1_000)
        stats = policy.finalize()
        assert stats.managed_hotspots == 0
        assert stats.per_hotspot_ipc_cov == 0.0
        assert stats.inter_hotspot_ipc_cov == 0.0

    def test_framework_on_trivial_program(self):
        report = ACEFramework().run(
            single_block_program(), max_instructions=100
        )
        assert report.hotspots_detected == 0
        assert report.l1d_energy_reduction == pytest.approx(0.0, abs=0.05)


class TestDegenerateEvents:
    def test_zero_instruction_block_event(self, machine):
        event = BlockEvent("m", "b", 0, [], [], None, True)
        cycles = machine.consume(event)
        assert cycles == 0.0
        assert machine.instructions == 0

    def test_event_with_only_stores(self, machine):
        event = BlockEvent("m", "b", 4, [], [0x100, 0x140], None, True)
        machine.consume(event)
        assert machine.hierarchy.l1d.stats.write_accesses == 2


class TestGuardStorm:
    def test_rapid_fire_requests_do_not_wedge(self, machine):
        granted = 0
        for i in range(100):
            if machine.request_reconfiguration("L1D", i % 4):
                granted += 1
        # Only the first change is granted (no instructions retire
        # in between), plus free same-setting requests.
        assert granted >= 1
        assert machine.denied_reconfigurations["L1D"] > 0
        # The machine remains usable.
        machine.consume(
            BlockEvent("m", "b", 10, [0x100], [], None, True)
        )


class TestCacheDegenerate:
    def test_minimum_geometry(self):
        # One set, one way.
        cache = Cache("tiny", 64, 64, 1, sizes=(64,))
        assert cache.n_sets == 1
        cache.access(0x0)
        cache.access(0x40)  # evicts
        assert not cache.contains(0x0)

    def test_fully_associative_like(self):
        cache = Cache("fa", 512, 64, 8, sizes=(512,))
        assert cache.n_sets == 1
        for i in range(8):
            cache.access(i * 64)
        assert cache.resident_lines == 8

    def test_empty_access_batch(self):
        cache = Cache("c", 1 * KB, 64, 2, sizes=(1 * KB,))
        result = cache.access_many([], [])
        assert result.accesses == 0
        assert result.miss_lines == []


class TestFrameworkCompare:
    def test_compare_runs_multiple_schemes(self):
        framework = ACEFramework()
        reports = framework.compare(
            make_loop_program(trips=30, span=256),
            max_instructions=300_000,
            schemes=("hotspot", "bbv", "positional"),
        )
        assert set(reports) == {"hotspot", "bbv", "positional"}
        for report in reports.values():
            assert report.instructions >= 300_000

    def test_compare_rejects_unknown_scheme(self):
        framework = ACEFramework()
        with pytest.raises(ValueError):
            framework.compare(
                make_loop_program(), 10_000, schemes=("oracle",)
            )


class TestMultiCUClassification:
    def test_leaves_fall_into_pipeline_cu_band(self):
        config = ExperimentConfig(
            machine=MachineConfig(enable_pipeline_cus=True),
            max_instructions=400_000,
        )
        from repro.sim.driver import run_benchmark

        policy = HotspotACEPolicy(tuning=config.tuning)
        run_benchmark(
            build_benchmark("db"), "hotspot", config, policy=policy
        )
        kinds = set(policy.kind_of.values())
        # With IQ/ROB at a 100-instruction scaled interval, tiny leaf
        # methods (size 50-500) become managed pipeline-CU hotspots.
        assert kinds & {"IQ", "ROB"}, kinds
