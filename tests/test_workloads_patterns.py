"""Unit tests for memory-access behaviours."""

import random

import pytest

from repro.workloads.patterns import (
    MixedBehavior,
    PointerChaseBehavior,
    StackBehavior,
    StridedBehavior,
    WanderingWindowBehavior,
    WorkingSetBehavior,
)

FRAME = 0x7F00_0000
REGION = 0x1000_0000


def generate(behavior, iteration=0, n_loads=8, n_stores=4, seed=1):
    rng = random.Random(seed)
    return behavior.generate(rng, FRAME, REGION, iteration, n_loads, n_stores)


class TestStackBehavior:
    def test_counts_and_bounds(self):
        loads, stores = generate(StackBehavior(span=128))
        assert len(loads) == 8 and len(stores) == 4
        for addr in loads + stores:
            assert FRAME <= addr < FRAME + 128
            assert addr % 4 == 0

    def test_footprint(self):
        assert StackBehavior(span=256).footprint() == 256

    def test_rejects_bad_span(self):
        with pytest.raises(ValueError):
            StackBehavior(span=0)


class TestStridedBehavior:
    def test_sequential_walk(self):
        behavior = StridedBehavior(span=1024, stride=64)
        loads, stores = generate(behavior, iteration=0, n_loads=4,
                                 n_stores=0)
        assert loads == [REGION, REGION + 64, REGION + 128, REGION + 192]

    def test_iteration_advances_position(self):
        behavior = StridedBehavior(span=10_000, stride=64)
        first, _ = generate(behavior, iteration=0, n_loads=4, n_stores=0)
        second, _ = generate(behavior, iteration=1, n_loads=4, n_stores=0)
        assert second[0] == first[-1] + 64

    def test_wraps_at_span(self):
        behavior = StridedBehavior(span=256, stride=64)
        loads, _ = generate(behavior, iteration=0, n_loads=8, n_stores=0)
        assert all(REGION <= a < REGION + 256 for a in loads)

    def test_offset(self):
        behavior = StridedBehavior(span=1024, stride=64, offset=4096)
        loads, _ = generate(behavior, n_loads=1, n_stores=0)
        assert loads[0] == REGION + 4096

    def test_stores_continue_the_walk(self):
        behavior = StridedBehavior(span=100_000, stride=64)
        loads, stores = generate(behavior, n_loads=2, n_stores=2)
        assert stores[0] == loads[-1] + 64


class TestWorkingSetBehavior:
    def test_bounds(self):
        behavior = WorkingSetBehavior(span=2048, locality=0.5)
        loads, stores = generate(behavior, n_loads=100, n_stores=50)
        for addr in loads + stores:
            assert REGION <= addr < REGION + 2048

    def test_locality_concentrates_in_hot_eighth(self):
        behavior = WorkingSetBehavior(span=8192, locality=1.0)
        loads, _ = generate(behavior, n_loads=200, n_stores=0)
        hot_end = REGION + 8192 // 8
        assert all(addr < hot_end for addr in loads)

    def test_zero_locality_spreads(self):
        behavior = WorkingSetBehavior(span=8192, locality=0.0)
        loads, _ = generate(behavior, n_loads=300, n_stores=0)
        assert max(loads) > REGION + 4096

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkingSetBehavior(span=100, locality=1.5)
        with pytest.raises(ValueError):
            WorkingSetBehavior(span=100, offset=-1)


class TestWanderingWindow:
    def test_window_bounds_at_fixed_iteration(self):
        behavior = WanderingWindowBehavior(
            window=1024, region_span=8192, drift=128
        )
        loads, _ = generate(behavior, iteration=0, n_loads=100, n_stores=0)
        assert all(REGION <= a < REGION + 1024 for a in loads)

    def test_window_drifts_with_iterations(self):
        behavior = WanderingWindowBehavior(
            window=1024, region_span=65536, drift=128
        )
        late, _ = generate(behavior, iteration=100, n_loads=50, n_stores=0)
        assert min(late) >= REGION + 100 * 128

    def test_wraps_in_region(self):
        behavior = WanderingWindowBehavior(
            window=1024, region_span=4096, drift=512
        )
        loads, _ = generate(behavior, iteration=1000, n_loads=50,
                            n_stores=0)
        assert all(REGION <= a < REGION + 4096 + 1024 for a in loads)

    def test_region_must_hold_window(self):
        with pytest.raises(ValueError):
            WanderingWindowBehavior(window=100, region_span=50)

    def test_footprint_is_window(self):
        behavior = WanderingWindowBehavior(512, 4096)
        assert behavior.footprint() == 512


class TestPointerChase:
    def test_serialized_flag(self):
        assert PointerChaseBehavior(1024).serialized is True
        assert not getattr(StackBehavior(), "serialized", False)

    def test_bounds(self):
        behavior = PointerChaseBehavior(span=512, offset=64)
        loads, _ = generate(behavior, n_loads=50, n_stores=0)
        assert all(REGION + 64 <= a < REGION + 64 + 512 for a in loads)


class TestMixedBehavior:
    def test_counts_preserved(self):
        behavior = MixedBehavior(
            [
                (StackBehavior(), 1.0),
                (WorkingSetBehavior(1024), 2.0),
                (StridedBehavior(1024), 1.0),
            ]
        )
        loads, stores = generate(behavior, n_loads=17, n_stores=9)
        assert len(loads) == 17
        assert len(stores) == 9

    def test_apportionment_by_weight(self):
        behavior = MixedBehavior(
            [(StackBehavior(), 3.0), (WorkingSetBehavior(1024), 1.0)]
        )
        loads, _ = generate(behavior, n_loads=100, n_stores=0)
        stack_loads = sum(1 for a in loads if a >= FRAME)
        assert stack_loads == 75

    def test_weights_normalised(self):
        behavior = MixedBehavior([(StackBehavior(), 5.0)])
        assert behavior.components[0][1] == pytest.approx(1.0)

    def test_from_kwargs(self):
        behavior = MixedBehavior.from_kwargs(
            stack=0.5, ws_span=2048, ws_weight=0.5
        )
        assert len(behavior.components) == 2

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            MixedBehavior([])

    def test_footprint_is_max_known(self):
        behavior = MixedBehavior(
            [(StackBehavior(span=64), 1.0),
             (WorkingSetBehavior(4096), 1.0)]
        )
        assert behavior.footprint() == 4096


class TestDeterminism:
    @pytest.mark.parametrize(
        "behavior",
        [
            StackBehavior(),
            StridedBehavior(2048, stride=64),
            WorkingSetBehavior(2048, locality=0.5),
            PointerChaseBehavior(2048),
            WanderingWindowBehavior(512, 4096),
        ],
        ids=lambda b: type(b).__name__,
    )
    def test_same_seed_same_addresses(self, behavior):
        first = generate(behavior, seed=7)
        second = generate(behavior, seed=7)
        assert first == second
