"""Backend conformance suite + concurrent-writer store stress.

Every registered :class:`repro.sim.pools.Pool` backend must honour the
same contract (docs/INTERNALS.md §14): bit-identical results to the
serial reference on a differential grid, crash-rebuild recovery where
the capability flags claim it, warm-pool reuse across batches, and a
result identity (``ExperimentConfig.fingerprint()``) that never sees
*where* a cell executed.  The SSH backend runs here through its
sshd-less loopback transport — same wire protocol, framed pickles and
all, no network.

The store side: ≥4 concurrent writer processes hammering overlapping
cells of a sharded :class:`~repro.sim.store.ResultStore` must leave no
corrupt, torn, or lost entries behind.
"""

from __future__ import annotations

import os
import subprocess
import sys
import warnings
from pathlib import Path

import pytest

from repro.faults import FaultPlan
from repro.sim.config import ExperimentConfig
from repro.sim.driver import RunSpec
from repro.sim.engine import Engine
from repro.sim.options import ExecutionOptions
from repro.sim.pools import (
    LocalProcessPool,
    SerialPool,
    SSHPool,
    available_backends,
    make_pool,
    parse_backend_spec,
)
from repro.sim.pools.ssh import loopback_transport, parse_hostfile
from repro.sim.store import ResultStore

SRC_DIR = str(Path(__file__).resolve().parent.parent / "src")
BUDGET = 60_000

#: One spec per registered backend kind, loopback for ssh.  Growing the
#: registry without growing this list fails test_registry_is_covered.
CONFORMANCE_SPECS = ("serial", "local:2", "ssh-loopback:2")


def config(**kwargs) -> ExperimentConfig:
    return ExperimentConfig(max_instructions=BUDGET, **kwargs)


def grid(cfg) -> list:
    return [
        RunSpec(name, scheme, cfg)
        for name in ("db", "jess")
        for scheme in ("baseline", "hotspot")
    ]


@pytest.fixture(scope="module")
def serial_reference():
    """The differential grid's ground truth, computed once per module."""
    return (
        Engine(pool="serial", use_cache=False, memory_cache={})
        .run(grid(config()))
        .values()
    )


class TestRegistry:
    def test_spec_parsing(self):
        assert parse_backend_spec("serial") == ("serial", None)
        assert parse_backend_spec("local:4") == ("local", "4")
        assert parse_backend_spec("ssh:hosts.txt") == ("ssh", "hosts.txt")
        assert parse_backend_spec("ssh:user@h1:hosts") == (
            "ssh", "user@h1:hosts"
        )

    def test_factories_produce_the_right_pools(self, tmp_path):
        assert isinstance(make_pool("serial"), SerialPool)
        local = make_pool("local:3")
        assert isinstance(local, LocalProcessPool)
        assert local.workers == 3
        loop = make_pool("ssh-loopback:2")
        assert isinstance(loop, SSHPool)
        assert loop.workers == 2
        hostfile = tmp_path / "hosts"
        hostfile.write_text("alpha:2\nbeta # one slot\n")
        ssh = make_pool(f"ssh:{hostfile}")
        assert isinstance(ssh, SSHPool)
        assert ssh.hosts == [("alpha", 2), ("beta", 1)]
        assert ssh.workers == 3

    def test_bad_specs_are_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            make_pool("slurm:4")
        with pytest.raises(ValueError, match="hostfile"):
            make_pool("ssh")
        with pytest.raises(ValueError, match="serial"):
            make_pool("serial:4")

    def test_hostfile_parsing(self, tmp_path):
        hostfile = tmp_path / "hosts"
        hostfile.write_text(
            "# fleet\nnode1:4\nnode2\n\nuser@node3:2  # comment\n"
        )
        assert parse_hostfile(hostfile) == [
            ("node1", 4), ("node2", 1), ("user@node3", 2)
        ]
        empty = tmp_path / "empty"
        empty.write_text("# nothing\n")
        with pytest.raises(ValueError, match="no hosts"):
            parse_hostfile(empty)

    def test_conformance_list_covers_the_registry(self):
        # Every registered backend kind must appear in the conformance
        # grid ("ssh" is exercised via its loopback transport, so the
        # ssh-loopback row covers it).  A new backend registered without
        # a conformance row fails here.
        kinds = {parse_backend_spec(s)[0] for s in CONFORMANCE_SPECS}
        for name in available_backends():
            covered = name in kinds or (
                name == "ssh" and "ssh-loopback" in kinds
            )
            assert covered, f"backend {name!r} has no conformance row"


class TestConformance:
    """Every backend against the serial ground truth."""

    @pytest.mark.parametrize("spec", CONFORMANCE_SPECS)
    def test_bit_identical_to_serial(self, spec, serial_reference):
        with Engine(pool=spec, use_cache=False, memory_cache={}) as engine:
            produced = engine.run(grid(config())).values()
        assert produced == serial_reference

    @pytest.mark.parametrize(
        "spec", [s for s in CONFORMANCE_SPECS if s != "serial"]
    )
    def test_warm_pool_reused_across_batches(self, spec):
        # (The serial backend has nothing to spawn: cells run on the
        # engine's in-process path and these counters stay 0.)
        cells = grid(config())
        with Engine(pool=spec, use_cache=False, memory_cache={}) as engine:
            engine.run(cells)
            engine.run(cells)
        assert engine.stats.pools_spawned == 1
        assert engine.stats.pool_reuses == 1

    @pytest.mark.parametrize(
        "spec", [s for s in CONFORMANCE_SPECS if s != "serial"]
    )
    def test_crash_rebuild_recovers_and_matches(
        self, spec, serial_reference
    ):
        pool = make_pool(spec)
        assert pool.capabilities.rebuild
        plan = FaultPlan(seed=7, worker_crash=0.3)
        with Engine(
            pool=pool,
            use_cache=False,
            memory_cache={},
            fault_plan=plan,
            max_retries=8,
            max_pool_rebuilds=20,
        ) as engine:
            produced = engine.run(grid(config())).values()
        stats = engine.stats
        # Recovery takes one of two shapes: a whole-pool rebuild
        # (local backend, or every ssh host dead at once), or — on the
        # per-host ssh backend — surgical rerouting of the dead host's
        # cells onto survivors (docs/INTERNALS.md §16), which never
        # counts as a rebuild.
        assert stats.worker_crashes > 0 or stats.hosts_down > 0
        assert stats.pool_rebuilds > 0 or stats.cells_rerouted > 0
        # worker_crash kills workers between cells, never mid-result —
        # the recovered batch is still bit-identical.
        assert produced == serial_reference

    def test_serial_pool_never_honours_worker_crash(self):
        # A worker_crash injection requires a disposable process; the
        # in-process backend must strip it rather than os._exit the
        # test runner.
        plan = FaultPlan(seed=7, worker_crash=1.0)
        engine = Engine(
            pool="serial", use_cache=False, memory_cache={}, fault_plan=plan
        )
        batch = engine.run([RunSpec("db", "baseline", config())])
        assert batch.outcomes[0].ok
        assert engine.stats.worker_crashes == 0

    def test_shared_store_across_backends(self, tmp_path):
        # A result computed over the loopback-ssh backend must be served
        # from the store to a serial engine: the fingerprint never sees
        # the execution location.
        store = ResultStore(tmp_path / "store")
        cells = grid(config())
        with Engine(
            pool="ssh-loopback:2", store=store, memory_cache={}
        ) as writer:
            writer.run(cells)
        assert len(store) == len(cells)
        reader = Engine(pool="serial", store=store, memory_cache={})
        reader.run(cells)
        assert reader.stats.store_hits == len(cells)
        assert reader.stats.simulations == 0


class TestPoolLifecycle:
    @pytest.mark.parametrize("spec", CONFORMANCE_SPECS)
    def test_start_is_idempotent_and_close_revives(self, spec):
        pool = make_pool(spec)
        assert pool.start() is True
        assert pool.alive
        assert pool.start() is False  # idempotent
        pool.close()
        assert not pool.alive
        pool.close()  # close is idempotent too
        assert pool.start() is True
        pool.close()

    def test_submit_on_closed_pool_raises_broken(self):
        pool = make_pool("serial")
        with pytest.raises(Exception) as excinfo:
            pool.submit_chunk(((), None, None))
        assert isinstance(excinfo.value, pool.broken_exceptions)

    def test_loopback_worker_death_is_a_broken_pool(self):
        # Kill the worker processes under the pool; the next chunk must
        # surface a broken_exceptions member (pipe EOF → PoolBrokenError),
        # which is what the engine's rebuild machinery keys on.
        pool = SSHPool([("loopback", 1)], transport=loopback_transport)
        pool.start()
        try:
            for breaker in pool._breakers.values():
                for worker in breaker.workers:
                    worker.proc.kill()
                    worker.proc.wait(timeout=10)
            cells = ((0, RunSpec("db", "baseline", config()), 1),)
            future = pool.submit_chunk((cells, None, None))
            error = future.exception(timeout=30)
            assert isinstance(error, pool.broken_exceptions)
        finally:
            pool.close(fail_fast=True)


class TestExecutionOptions:
    def test_backend_resolution(self):
        assert ExecutionOptions().resolved_backend() == "serial"
        assert ExecutionOptions(jobs=4).resolved_backend() == "local:4"
        assert ExecutionOptions(
            backend="ssh-loopback:2", jobs=4
        ).resolved_backend() == "ssh-loopback:2"

    def test_argparse_round_trip(self):
        import argparse

        parser = argparse.ArgumentParser()
        ExecutionOptions.add_arguments(parser)
        args = parser.parse_args(
            [
                "--backend", "local:3", "--store-dir", "/tmp/s",
                "--chunk-size", "2", "--max-pool-rebuilds", "5",
            ]
        )
        options = ExecutionOptions.from_args(args)
        assert options.backend == "local:3"
        assert options.store_dir == "/tmp/s"
        assert options.chunk_size == 2
        assert options.max_pool_rebuilds == 5
        assert not options.no_store

    def test_engine_consumes_options(self, tmp_path):
        options = ExecutionOptions(
            backend="local:3",
            chunk_size=2,
            max_pool_rebuilds=7,
            store_dir=str(tmp_path / "store"),
        )
        engine = Engine(options=options)
        assert isinstance(engine.pool, LocalProcessPool)
        assert engine.jobs == 3
        assert engine.chunk_size == 2
        assert engine.max_pool_rebuilds == 7
        assert engine.store is not None
        assert engine.store.root == tmp_path / "store"
        no_store = Engine(options=ExecutionOptions(no_store=True))
        assert no_store.store is None

    def test_explicit_arguments_beat_options(self):
        options = ExecutionOptions(backend="local:3", chunk_size=2)
        engine = Engine(pool="serial", chunk_size=4, options=options)
        assert isinstance(engine.pool, SerialPool)
        assert engine.chunk_size == 4

    def test_fingerprint_never_sees_execution_knobs(self):
        # The backend is a location, not an identity: no ExecutionOptions
        # field may leak into the config fingerprint or the cache key.
        cfg = config()
        fingerprint = cfg.fingerprint()
        spec_serial = RunSpec("db", "baseline", cfg)
        assert spec_serial.cache_key() == RunSpec(
            "db", "baseline", cfg
        ).cache_key()
        from repro.sim.config import canonicalize

        canonical = canonicalize(cfg)
        for field in (
            "backend", "jobs", "store_dir", "no_store", "chunk_size",
            "max_pool_rebuilds", "pool", "schedule", "cost_model",
            "cost_model_dir",
        ):
            assert field not in str(canonical)
        assert cfg.fingerprint() == fingerprint


class TestDeprecatedShims:
    def test_run_batch_warns_exactly_once_and_matches_run(
        self, monkeypatch
    ):
        import repro.sim.engine as engine_mod

        monkeypatch.setattr(engine_mod, "_RUN_BATCH_WARNED", False)
        engine = Engine(memory_cache={})
        cells = [RunSpec("db", "baseline", config())]
        expected = engine.run(cells).values()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            first = engine.run_batch(cells)
            second = engine.run_batch(cells)
        deprecations = [
            w for w in caught
            if issubclass(w.category, DeprecationWarning)
            and "run_batch" in str(w.message)
        ]
        assert len(deprecations) == 1
        assert first.values() == expected
        assert second.values() == expected


# ---------------------------------------------------------------------------
# Concurrent writers across shards: ≥4 processes, overlapping cells
# ---------------------------------------------------------------------------

STRESS_WRITER_SCRIPT = """
import sys
from repro.sim.driver import RunResult
from repro.sim.store import ResultStore

store = ResultStore(sys.argv[1])
writer_id = int(sys.argv[2])

def result(tag):
    return RunResult(
        benchmark=tag, scheme="baseline", instructions=1000,
        cycles=1500.0, ipc=0.66, l1d_energy_nj=1.0, l2_energy_nj=2.0,
        l1d_breakdown={}, l2_breakdown={}, memory_nj=0.5,
        l1d_miss_rate=0.01, l2_miss_rate=0.02,
        branch_mispredict_rate=0.03, n_hotspots=0,
        instructions_in_hotspots=0,
    )

# Every writer commits the same 16 cells (full-batch put_many through
# the per-shard lease path) for several rounds: maximal same-key and
# same-shard contention.  Fingerprints spread over 16 shards.
cells = [
    ("db", "baseline", f"{i:x}" * 64, result("db")) for i in range(16)
]
for round in range(10):
    store.put_many(cells)
    for benchmark, scheme, fingerprint, expected in cells:
        loaded = store.get(benchmark, scheme, fingerprint)
        assert loaded is not None, f"lost entry in round {round}"
        assert loaded == expected, f"torn entry in round {round}"
assert store.quarantined == 0, "reader quarantined a concurrent write"
print("STRESS_OK", writer_id)
"""

N_STRESS_WRITERS = 4


class TestConcurrentWriterStress:
    def test_four_writers_no_corrupt_or_lost_entries(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [SRC_DIR]
            + [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p]
        )
        writers = [
            subprocess.Popen(
                [
                    sys.executable, "-c", STRESS_WRITER_SCRIPT,
                    str(tmp_path), str(index),
                ],
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
                env=env,
            )
            for index in range(N_STRESS_WRITERS)
        ]
        for index, writer in enumerate(writers):
            out, err = writer.communicate(timeout=300)
            assert writer.returncode == 0, err
            assert f"STRESS_OK {index}" in out
        store = ResultStore(tmp_path)
        # No entry lost, none corrupt, no debris, no leaked lease.
        assert len(store) == 16
        assert store.corrupt_files() == []
        assert store.stale_tmp_files() == []
        assert sorted(p.name for p in store.root.glob("*/.lease")) == []
        for fingerprint in (f"{i:x}" * 64 for i in range(16)):
            loaded = store.get("db", "baseline", fingerprint)
            assert loaded is not None
            assert store.shard_for(fingerprint).is_dir()
        assert store.quarantined == 0

    def test_stale_lease_is_taken_over(self, tmp_path):
        from repro.sim.store import LEASE_STALE_S

        store = ResultStore(tmp_path)
        fingerprint = "ab" * 32
        shard = store.shard_for(fingerprint)
        shard.mkdir(parents=True)
        lease = shard / ".lease"
        lease.write_text("pid=99999 ts=0\n")
        old = lease.stat().st_mtime - (LEASE_STALE_S + 5)
        os.utime(lease, (old, old))
        assert store.stale_lease_files() == [lease]
        # A writer takes the dead lease over instead of waiting it out.
        import repro.sim.driver as driver

        result = driver.RunResult(
            benchmark="db", scheme="baseline", instructions=1,
            cycles=1.0, ipc=1.0, l1d_energy_nj=0.0, l2_energy_nj=0.0,
            l1d_breakdown={}, l2_breakdown={}, memory_nj=0.0,
            l1d_miss_rate=0.0, l2_miss_rate=0.0,
            branch_mispredict_rate=0.0, n_hotspots=0,
            instructions_in_hotspots=0,
        )
        import time as time_mod

        started = time_mod.monotonic()
        store.put("db", "baseline", fingerprint, result)
        assert time_mod.monotonic() - started < 5.0  # no LEASE_WAIT stall
        assert store.lease_timeouts == 0
        assert not lease.exists()  # released after the commit

    def test_legacy_flat_entry_is_read_and_migrated(self, tmp_path):
        import repro.sim.driver as driver

        store = ResultStore(tmp_path)
        fingerprint = "cd" * 32
        result = driver.RunResult(
            benchmark="db", scheme="baseline", instructions=1,
            cycles=1.0, ipc=1.0, l1d_energy_nj=0.0, l2_energy_nj=0.0,
            l1d_breakdown={}, l2_breakdown={}, memory_nj=0.0,
            l1d_miss_rate=0.0, l2_miss_rate=0.0,
            branch_mispredict_rate=0.0, n_hotspots=0,
            instructions_in_hotspots=0,
        )
        sharded_path = store.put("db", "baseline", fingerprint, result)
        flat_path = store._legacy_path_for("db", "baseline", fingerprint)
        # Recreate the pre-shard layout by moving the entry to the root.
        os.replace(sharded_path, flat_path)
        assert not sharded_path.exists()
        assert store.get("db", "baseline", fingerprint) == result
        # First hit migrated it into its shard.
        assert sharded_path.exists()
        assert not flat_path.exists()


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
