"""Additional report/exhibit tests: energy breakdown, markdown summary,
CLI energy exhibit."""

import pytest

from repro.cli import main
from repro.report.exhibits import energy_breakdown
from repro.sim.config import ExperimentConfig
from repro.sim.experiment import run_suite


@pytest.fixture(scope="module")
def tiny_suite():
    config = ExperimentConfig(max_instructions=400_000)
    return run_suite(["db"], config)


class TestEnergyBreakdown:
    def test_rows_cover_both_caches_and_schemes(self, tiny_suite):
        exhibit = energy_breakdown(tiny_suite)
        labels = set(exhibit.data)
        for cache in ("L1D", "L2"):
            for scheme in ("baseline", "hotspot"):
                for component in ("dynamic", "leakage", "reconfig"):
                    assert (
                        f"{cache} {scheme} {component} (nJ/insn)" in labels
                    )

    def test_baseline_pays_no_reconfig_energy(self, tiny_suite):
        exhibit = energy_breakdown(tiny_suite)
        assert (
            exhibit.data["L1D baseline reconfig (nJ/insn)"]["db"] == 0.0
        )
        assert (
            exhibit.data["L2 baseline reconfig (nJ/insn)"]["db"] == 0.0
        )

    def test_component_sums_bounded_by_totals(self, tiny_suite):
        exhibit = energy_breakdown(tiny_suite)
        run = tiny_suite.comparisons["db"].hotspot
        total = sum(
            exhibit.data[f"L1D hotspot {c} (nJ/insn)"]["db"]
            for c in ("dynamic", "leakage", "reconfig")
        )
        assert total == pytest.approx(
            run.l1d_energy_nj / run.instructions, rel=1e-6
        )


class TestCLIEnergy:
    def test_energy_exhibit_via_cli(self, capsys):
        code = main(
            ["energy", "--benchmarks", "db", "--instructions", "300000"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Energy breakdown" in out
        assert "leakage" in out

    def test_all_includes_energy(self):
        from repro.cli import ALL_EXHIBITS

        assert "energy" in ALL_EXHIBITS


class TestRegenerateScript:
    def test_script_writes_outputs(self, tmp_path, monkeypatch):
        import subprocess
        import sys

        out = tmp_path / "results"
        proc = subprocess.run(
            [
                sys.executable,
                "tools/regenerate_experiments.py",
                "--instructions", "300000",
                "--out", str(out),
            ],
            capture_output=True,
            text=True,
            cwd=".",
            timeout=600,
        )
        assert proc.returncode == 0, proc.stderr
        assert (out / "exhibits.txt").exists()
        summary = (out / "summary.md").read_text()
        assert summary.startswith("### Headline comparison")
        assert "| comp |" in summary
