"""Seeded chaos suite (``-m chaos``): the fault-injection acceptance gate.

Everything here runs under an injected-fault schedule with real process
pools — worker crashes (``os._exit`` → ``BrokenProcessPool``), injected
timeouts, corrupted store entries — and asserts the engine's graceful
degradation: batches complete with per-cell outcomes, broken pools are
rebuilt (and eventually degraded to serial execution), and the same seed
reproduces the same fault schedule and the same outcomes.

CI runs this file as its own step with a hard job timeout, so a
regression that deadlocks the pool-recovery path fails fast instead of
hanging the whole workflow.
"""

from __future__ import annotations

import json

import pytest

from repro.faults import FaultPlan, PROBABILITY_SITES
from repro.sim.config import ExperimentConfig
from repro.sim.driver import RunSpec
from repro.sim.engine import Engine
from repro.sim.store import ResultStore
from repro.workloads.specjvm import BENCHMARK_NAMES

pytestmark = pytest.mark.chaos

BUDGET = 25_000
SCHEMES = ("baseline", "hotspot")


def suite_cells(config):
    return [
        RunSpec(name, scheme, config)
        for name in BENCHMARK_NAMES
        for scheme in SCHEMES
    ]


class TestChaosGate:
    """The ISSUE's acceptance gate: 7 benchmarks × 2 schemes under chaos."""

    PLAN = dict(seed=1305, worker_crash=0.2, cell_timeout=0.15,
                store_corrupt=0.5)

    def run_once(self, tmp_path, tag):
        config = ExperimentConfig(max_instructions=BUDGET)
        plan = FaultPlan(**self.PLAN)
        store = ResultStore(tmp_path / f"store-{tag}")
        engine = Engine(
            jobs=2,
            store=store,
            memory_cache={},
            fault_plan=plan,
            max_retries=5,
            failure_policy="partial",
        )
        batch = engine.run(suite_cells(config))
        return engine, plan, batch

    def test_degraded_batch_completes_with_per_cell_outcomes(
        self, tmp_path
    ):
        engine, plan, batch = self.run_once(tmp_path, "gate")
        assert len(batch) == len(BENCHMARK_NAMES) * len(SCHEMES)
        for outcome in batch:
            assert outcome.status in ("ok", "failed", "timeout", "crashed")
            if outcome.ok:
                assert outcome.result is not None
            else:
                assert outcome.result is None and outcome.error
        # The schedule at this seed actually exercised the chaos paths.
        assert engine.stats.worker_crashes >= 1
        assert engine.stats.pool_rebuilds >= 1
        assert engine.stats.retries >= 1
        assert plan.injected.get("store_corrupt", 0) >= 1
        # The schedule *contains* timeout draws; whether a given draw's
        # attempt ever executes is scheduling-dependent under crash
        # interference (INTERNALS.md §11), so the executed-timeout count
        # is asserted in the deterministic no-crash test below instead.
        assert any(
            plan.decide("cell_timeout", (name, scheme, attempt))
            for name in BENCHMARK_NAMES
            for scheme in SCHEMES
            for attempt in range(1, 7)
        )

    def test_same_seed_reproduces_schedule_and_outcomes(self, tmp_path):
        _, _, first = self.run_once(tmp_path, "a")
        _, _, second = self.run_once(tmp_path, "b")
        # Identical fault schedule: decisions are pure functions of
        # (seed, site, key), independent of pool scheduling.
        plan_a = FaultPlan(**self.PLAN)
        plan_b = FaultPlan(**self.PLAN)
        for site in PROBABILITY_SITES:
            for name in BENCHMARK_NAMES:
                for scheme in SCHEMES:
                    for attempt in range(1, 7):
                        key = (name, scheme, attempt)
                        assert plan_a.decide(site, key) == plan_b.decide(
                            site, key
                        )
        # Identical outcomes: same statuses, and bit-identical results
        # for the surviving cells (simulation is deterministic no matter
        # how many crash-interrupted attempts preceded it).
        assert [o.status for o in first] == [o.status for o in second]
        for a, b in zip(first, second):
            if a.ok:
                assert a.result == b.result

    def test_corrupted_entries_quarantined_by_next_reader(self, tmp_path):
        engine, plan, batch = self.run_once(tmp_path, "quarantine")
        store = engine.store
        corrupted = plan.injected.get("store_corrupt", 0)
        assert corrupted >= 1
        # A fresh engine over the same store must quarantine every
        # damaged entry it touches and re-simulate those cells — the
        # batch still completes.
        reader = Engine(
            jobs=1,
            store=store,
            memory_cache={},
            failure_policy="partial",
        )
        rerun = reader.run(
            suite_cells(ExperimentConfig(max_instructions=BUDGET))
        )
        assert store.quarantined == corrupted
        assert len(store.corrupt_files()) == corrupted
        for path in store.corrupt_files():
            assert store.quarantine_reason(path)
        for a, b in zip(batch, rerun):
            if a.ok and b.ok:
                assert a.result == b.result


class TestPoolCrashRecovery:
    def test_persistent_crashes_degrade_to_serial(self, tmp_path):
        # Every pool attempt crashes; after the rebuild budget the
        # engine must fall back to in-process serial execution (where
        # worker_crash never fires) and still produce every result.
        config = ExperimentConfig(max_instructions=BUDGET)
        plan = FaultPlan(seed=0, worker_crash=1.0)
        engine = Engine(
            jobs=2,
            store=ResultStore(tmp_path / "store"),
            memory_cache={},
            fault_plan=plan,
            max_retries=10,
            max_pool_rebuilds=2,
            failure_policy="partial",
        )
        cells = [
            RunSpec(name, "baseline", config)
            for name in BENCHMARK_NAMES[:3]
        ]
        batch = engine.run(cells)
        assert not batch.degraded
        assert all(o.ok for o in batch)
        assert engine.stats.worker_crashes >= 1
        assert engine.stats.pool_rebuilds >= engine.max_pool_rebuilds
        assert engine.stats.simulations == len(cells)

    def test_exhausted_crash_budget_fails_cells_not_process(self, tmp_path):
        # Tight retry budget: cells die as "crashed" outcomes instead of
        # taking the batch (or the parent process) down.
        config = ExperimentConfig(max_instructions=BUDGET)
        plan = FaultPlan(seed=0, worker_crash=1.0)
        engine = Engine(
            jobs=2,
            store=None,
            memory_cache={},
            fault_plan=plan,
            max_retries=1,
            max_pool_rebuilds=10,
            failure_policy="skip",
        )
        cells = [
            RunSpec(name, "baseline", config)
            for name in BENCHMARK_NAMES[:2]
        ]
        batch = engine.run(cells)
        assert batch.degraded
        assert [o.status for o in batch] == ["crashed", "crashed"]
        assert all("BrokenProcessPool" in (o.error or "") for o in batch)


class TestNoCrashChaosDeterminism:
    def test_full_outcome_records_reproduce_without_crash_interference(
        self, tmp_path
    ):
        # Without worker crashes no cell can be interrupted by a
        # neighbour, so even the per-cell attempt counts are pure
        # functions of the seed and must reproduce exactly.
        def run(tag):
            config = ExperimentConfig(max_instructions=BUDGET)
            engine = Engine(
                jobs=2,
                store=ResultStore(tmp_path / f"store-{tag}"),
                memory_cache={},
                fault_plan=FaultPlan(
                    seed=77, cell_exception=0.3, cell_timeout=0.2
                ),
                max_retries=3,
                failure_policy="skip",
            )
            return engine, engine.run(suite_cells(config))

        engine_a, first = run("a")
        engine_b, second = run("b")
        # Without crash interference the executed-timeout count is a
        # pure function of the seed — this pins the timeout site the
        # crash-gate test above cannot assert deterministically.
        assert engine_a.stats.timeouts >= 1
        assert engine_a.stats.timeouts == engine_b.stats.timeouts
        records = lambda batch: [  # noqa: E731
            (o.spec.benchmark_name, o.spec.scheme, o.status, o.attempts,
             o.error)
            for o in batch
        ]
        assert records(first) == records(second)


class TestChaosCLI:
    def test_inject_and_on_error_flags(self, tmp_path, capsys):
        from repro.cli import main

        stats_path = tmp_path / "stats.json"
        code = main(
            [
                "quick",
                "--benchmarks", "db",
                "--instructions", str(BUDGET),
                "--store-dir", str(tmp_path / "store"),
                "--inject", "seed=9,cell_exception=0.2,cell_timeout=0.1",
                "--on-error", "partial",
                "--stats-json", str(stats_path),
            ]
        )
        assert code == 0
        payload = json.loads(stats_path.read_text())
        assert payload["simulations"] >= 1
        out = capsys.readouterr().out
        assert "energy reduction" in out

    def test_bad_inject_spec_fails_cleanly(self, tmp_path, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "quick",
                    "--store-dir", str(tmp_path / "store"),
                    "--inject", "seed=1,bogus=0.5",
                ]
            )
        assert excinfo.value.code == 2
        assert "bad --inject plan" in capsys.readouterr().err
