"""Distributed-resilience suite (docs/INTERNALS.md §16).

Three pillars, each driven by seeded fault injection so the failures
are deterministic and replayable:

* **per-host health** — a ``host_down`` injection kills every worker of
  one ssh-loopback host; the engine reroutes the stranded cells to the
  survivors (no whole-pool rebuild, no degrade-to-serial), the host's
  circuit breaker opens, and the batch stays bit-identical to serial;
* **straggler mitigation** — a ``straggler_delay`` injection makes one
  host slow; with ``straggler_factor`` set the engine speculatively
  twins the straggling chunk onto an idle worker, the fast copy wins,
  and the batch beats the unmitigated wall-clock;
* **crash-safe resume** — ``Engine.run(cells, resume=manifest)``
  replays a prior run's flight-recorder manifest, re-executes only the
  never-finished cells (done cells come back from the result store
  under the same fingerprints), and survives stale store leases and
  GC'd entries.

The seeds below were searched for offline: seed 12 draws "loop0 dead at
incarnation 1, loop1 alive" at ``host_down=0.5``; seed 83 draws "loop0
always slow, loop1 always fast" for the db benchmark grid at
``straggler_delay=0.5``.
"""

from __future__ import annotations

import os
import time
import warnings

import pytest

from repro.faults import FaultPlan
from repro.obs import (
    CIRCUIT_OPEN,
    HOST_DOWN,
    FlightRecorder,
    Telemetry,
)
from repro.sim.config import ExperimentConfig
from repro.sim.driver import RunSpec
from repro.sim.engine import Engine
from repro.sim.store import ResultStore

BUDGET = 25_000
SCHEMES = ("baseline", "bbv", "hotspot")


def config() -> ExperimentConfig:
    return ExperimentConfig(max_instructions=BUDGET)


def cells(benchmarks=("db",), schemes=SCHEMES) -> list:
    cfg = config()
    return [
        RunSpec(name, scheme, cfg)
        for name in benchmarks
        for scheme in schemes
    ]


def serial_values(specs) -> list:
    engine = Engine(pool="serial", use_cache=False, memory_cache={})
    try:
        return engine.run(specs).values()
    finally:
        engine.close()


@pytest.mark.chaos
class TestHostDown:
    """One of two loopback hosts dies; the batch survives surgically."""

    #: Seed 12 at p=0.5: loop0@incarnation-1 draws dead, loop1 alive.
    PLAN = dict(seed=12, host_down=0.5)

    def test_reroutes_to_survivors_bit_identical(self):
        specs = cells()
        telemetry = Telemetry()
        engine = Engine(
            pool="ssh-loopback:2",
            use_cache=False,
            memory_cache={},
            fault_plan=FaultPlan(**self.PLAN),
            max_retries=3,
            chunk_size=1,
            failure_policy="partial",
            telemetry=telemetry,
        )
        try:
            batch = engine.run(specs)
        finally:
            engine.close()
        assert [o.status for o in batch] == ["ok"] * len(specs)
        stats = engine.stats
        # Surgical recovery: the dead host's cells rerouted to the
        # survivor — never a whole-pool rebuild, never degrade-to-serial.
        assert stats.cells_rerouted > 0
        assert stats.pool_rebuilds == 0
        assert stats.hosts_down >= 1
        # The health transitions reached telemetry.
        assert len(telemetry.log.by_name(HOST_DOWN)) >= 1
        assert len(telemetry.log.by_name(CIRCUIT_OPEN)) >= 1
        assert batch.values() == serial_values(specs)

    def test_breaker_state_is_reported(self):
        engine = Engine(
            pool="ssh-loopback:2",
            use_cache=False,
            memory_cache={},
            fault_plan=FaultPlan(**self.PLAN),
            max_retries=3,
            chunk_size=1,
            failure_policy="partial",
        )
        try:
            engine.run(cells())
            health = engine.pool.report_health()
        finally:
            engine.close()
        assert set(health) == {"loop0", "loop1"}
        states = {host: snap["state"] for host, snap in health.items()}
        assert "open" in states.values()  # the dead host's breaker
        assert "closed" in states.values()  # the survivor
        for snap in health.values():
            assert {"state", "live_workers", "incarnation"} <= set(snap)

    def test_host_faults_inert_on_local_backend(self):
        # The local pool has no host identity: the same plan must be a
        # no-op there, and the batch bit-identical to serial — the
        # cross-backend determinism contract under a host-fault plan.
        specs = cells()
        engine = Engine(
            pool="local:2",
            use_cache=False,
            memory_cache={},
            fault_plan=FaultPlan(**self.PLAN),
            failure_policy="partial",
        )
        try:
            batch = engine.run(specs)
        finally:
            engine.close()
        assert [o.status for o in batch] == ["ok"] * len(specs)
        assert engine.stats.hosts_down == 0
        assert batch.values() == serial_values(specs)


@pytest.mark.chaos
class TestStragglerMitigation:
    """A slow host is out-raced by a speculative twin on a fast one."""

    #: Seed 83 at p=0.5: loop0 draws slow for every (db, scheme,
    #: attempt-1) key, loop1 draws fast.
    PLAN = dict(seed=83, straggler_delay=0.5, straggler_delay_s=1.5)

    def _run(self, specs, factor):
        engine = Engine(
            pool="ssh-loopback:2",
            use_cache=False,
            memory_cache={},
            fault_plan=FaultPlan(**self.PLAN),
            chunk_size=1,
            straggler_factor=factor,
        )
        start = time.perf_counter()
        try:
            batch = engine.run(specs)
            # Measured before close(): shutdown waits for the cancelled
            # loser worker's sleep to drain, which is not batch latency.
            elapsed = time.perf_counter() - start
        finally:
            engine.close()
        return batch, elapsed, engine.stats

    def test_speculation_beats_wall_clock_bit_identical(self):
        specs = cells() * 2  # 6 cells: enough duration samples
        slow_batch, slow_s, slow_stats = self._run(specs, None)
        fast_batch, fast_s, fast_stats = self._run(specs, 3.0)
        assert slow_stats.stragglers_detected == 0
        assert fast_stats.stragglers_detected >= 1
        assert fast_stats.speculations_won >= 1
        # Speculation only re-schedules; results stay bit-identical.
        assert fast_batch.values() == slow_batch.values()
        assert fast_batch.values() == serial_values(specs)
        # The mitigated run dodges at least one injected delay.
        assert fast_s < slow_s


class TestCrashSafeResume:
    """Manifest replay: only never-finished cells re-execute."""

    def _record_partial(self, tmp_path, done_specs, store):
        recorder = FlightRecorder(tmp_path / "original.jsonl")
        engine = Engine(
            pool="serial",
            store=store,
            memory_cache={},
            recorder=recorder,
        )
        try:
            batch = engine.run(done_specs)
        finally:
            engine.close()
        assert all(o.ok for o in batch)
        return recorder.path

    def test_resume_partitions_and_skips_done_cells(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        specs = cells(benchmarks=("db", "jess"))  # 6 cells
        manifest = self._record_partial(tmp_path, specs[:3], store)

        recorder = FlightRecorder(tmp_path / "continuation.jsonl")
        engine = Engine(
            pool="serial",
            store=store,
            memory_cache={},
            recorder=recorder,
        )
        try:
            batch = engine.run(specs, resume=manifest)
        finally:
            engine.close()
        assert all(o.ok for o in batch)
        stats = engine.stats
        assert stats.resumed_done == 3
        assert stats.resumed_new == 3
        # The store-hit gate: zero re-simulation of done cells.
        assert stats.simulations == 3
        assert stats.store_hits == 3
        # The continuation manifest links back to the original.
        begin = FlightRecorder.read(recorder.path)[0]
        assert begin["resume_of"] == str(manifest)
        assert begin["resume_counts"] == {
            "done": 3, "failed": 3 - 3, "new": 3
        }

    def test_resume_consumed_once(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        specs = cells()
        manifest = self._record_partial(tmp_path, specs, store)
        engine = Engine(pool="serial", store=store, memory_cache={})
        try:
            engine.run(specs, resume=manifest)
            assert engine.stats.resumed_done == 3
            engine.run(specs)  # no resume carry-over
            assert engine.stats.resumed_done == 3
        finally:
            engine.close()

    def test_resume_with_gcd_store_reexecutes(self, tmp_path):
        # An entry GC'd between the runs must simply re-execute: resume
        # never trusts the manifest over the store.
        store = ResultStore(tmp_path / "store")
        specs = cells()
        manifest = self._record_partial(tmp_path, specs, store)
        empty = ResultStore(tmp_path / "fresh-store")
        engine = Engine(pool="serial", store=empty, memory_cache={})
        try:
            batch = engine.run(specs, resume=manifest)
        finally:
            engine.close()
        assert all(o.ok for o in batch)
        assert engine.stats.resumed_done == 3  # manifest still says done
        assert engine.stats.simulations == 3  # ...but the store rules
        assert engine.stats.store_hits == 0

    def test_resume_recommit_takes_over_stale_lease(self, tmp_path):
        # A writer SIGKILL'd mid-batch leaves its per-shard lease
        # behind; the resume's re-commit must take the stale lease over
        # instead of stalling or double-writing.
        store = ResultStore(tmp_path / "store")
        specs = cells(benchmarks=("db", "jess"))
        manifest = self._record_partial(tmp_path, specs[:3], store)
        long_ago = time.time() - 3600.0
        for spec in specs[3:]:
            shard = store.shard_for(spec.cache_key()[2])
            shard.mkdir(parents=True, exist_ok=True)
            lease = shard / ".lease"
            lease.touch()
            os.utime(lease, (long_ago, long_ago))
        engine = Engine(pool="serial", store=store, memory_cache={})
        try:
            batch = engine.run(specs, resume=manifest)
        finally:
            engine.close()
        assert all(o.ok for o in batch)
        assert engine.stats.simulations == 3
        assert store.lease_timeouts == 0  # takeover, not overrun
        assert len(store) == len(specs)


class TestCloseRobustness:
    def test_close_idempotent_when_pool_broken(self):
        # Regression: closing an engine whose ssh workers already died
        # must not raise — close() falls back to fail-fast and, at
        # worst, abandons the backend.
        engine = Engine(pool="ssh-loopback:1", use_cache=False)
        engine.pool.start()
        for breaker in engine.pool._breakers.values():
            for worker in breaker.workers:
                worker.proc.kill()
                worker.proc.wait(timeout=10)
        engine.close()
        engine.close()  # idempotent

    def test_close_safe_on_half_constructed_engine(self):
        engine = Engine.__new__(Engine)  # __init__ never ran
        engine.close()  # must not raise


class TestRecorderHardening:
    def test_records_carry_schema_version(self, tmp_path):
        from repro.obs.recorder import SCHEMA_VERSION

        recorder = FlightRecorder(tmp_path / "run.jsonl")
        engine = Engine(
            pool="serial", use_cache=False, memory_cache={},
            recorder=recorder,
        )
        try:
            engine.run(cells(schemes=("baseline",)))
        finally:
            engine.close()
        records = FlightRecorder.read(recorder.path)
        assert records
        assert all(r["schema"] == SCHEMA_VERSION for r in records)

    def test_truncated_trailing_line_is_tolerated(self, tmp_path):
        recorder = FlightRecorder(tmp_path / "run.jsonl")
        engine = Engine(
            pool="serial", use_cache=False, memory_cache={},
            recorder=recorder,
        )
        try:
            engine.run(cells(schemes=("baseline",)))
        finally:
            engine.close()
        # Simulate a SIGKILL mid-write: chop the file mid-record.
        raw = recorder.path.read_bytes()
        recorder.path.write_bytes(raw[: len(raw) - 25])
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            records = FlightRecorder.read(recorder.path)
        assert records  # everything before the torn line survives
        assert any(
            issubclass(w.category, RuntimeWarning) for w in caught
        )
        # And replay still partitions what it can see.
        replay = FlightRecorder.replay(recorder.path)
        assert replay.path == recorder.path
