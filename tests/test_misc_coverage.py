"""Focused tests for remaining corners: driver summaries, framework
comparison content, positional on real stand-ins, synthetic options."""

import pytest

from repro.core.framework import ACEFramework
from repro.phases.positional import PositionalACEPolicy
from repro.sim.config import ExperimentConfig
from repro.sim.driver import run_benchmark
from repro.workloads.specjvm import build_benchmark
from repro.workloads.synthetic import random_program
from tests.conftest import make_two_tier_program


class TestHotspotSummaries:
    def test_summaries_track_do_database(self, small_config):
        result = run_benchmark("db", "hotspot", small_config)
        assert set(result.hotspot_summaries)
        for name, summary in result.hotspot_summaries.items():
            assert summary.name == name
            assert summary.invocations > 0
            assert summary.mean_size > 0
            assert summary.detected_at is not None

    def test_avg_metrics_derive_from_summaries(self, small_config):
        result = run_benchmark("db", "hotspot", small_config)
        sizes = [
            s.mean_size for s in result.hotspot_summaries.values()
        ]
        assert result.avg_hotspot_size == pytest.approx(
            sum(sizes) / len(sizes)
        )


class TestFrameworkCompareContent:
    def test_reports_share_one_baseline(self):
        framework = ACEFramework()
        reports = framework.compare(
            make_two_tier_program(), max_instructions=250_000
        )
        baselines = {
            r.baseline_cycles for r in reports.values()
        }
        assert len(baselines) == 1  # same baseline run for all schemes

    def test_hotspot_scheme_summary_meaningful(self):
        framework = ACEFramework()
        reports = framework.compare(
            make_two_tier_program(), max_instructions=400_000,
            schemes=("hotspot",),
        )
        report = reports["hotspot"]
        assert report.hotspots_detected >= 2
        assert "hotspots" in report.summary()


class TestPositionalOnStandIns:
    def test_positional_runs_on_benchmark(self):
        config = ExperimentConfig(max_instructions=500_000)
        policy = PositionalACEPolicy(tuning=config.tuning)
        result = run_benchmark(
            build_benchmark("jess"), "hotspot", config, policy=policy
        )
        assert result.scheme == "positional"
        stats = policy.finalize()
        # Drivers (>= the L2 interval in size) are managed; mids are not.
        assert stats.managed_hotspots >= 1
        assert stats.unmanaged_hotspots >= 1
        kinds = set(stats.kind_of.values())
        assert kinds <= {"procedure", "unmanaged"}


class TestSyntheticOptions:
    def test_without_memory_has_no_behaviours(self):
        program = random_program(5, with_memory=False)
        for method in program.methods.values():
            for block in method.blocks.values():
                assert block.memory is None

    def test_with_memory_generates_behaviours(self):
        found = False
        for seed in range(10):
            program = random_program(seed, with_memory=True)
            for method in program.methods.values():
                for block in method.blocks.values():
                    if block.memory is not None:
                        found = True
        assert found

    def test_size_limits_respected(self):
        program = random_program(7, max_methods=2, max_blocks=2)
        assert len(program.methods) <= 2
        for method in program.methods.values():
            assert len(method.blocks) <= 2


class TestBenchmarkSizeScale:
    def test_size_scale_scales_targets(self):
        normal = build_benchmark("db")
        doubled = build_benchmark("db", size_scale=2.0)
        normal_mids = [
            s.target_size for s in normal.library.specs
            if s.kind == "mid"
        ]
        doubled_mids = [
            s.target_size for s in doubled.library.specs
            if s.kind == "mid"
        ]
        assert sum(doubled_mids) > 1.5 * sum(normal_mids)

    def test_bad_size_scale_rejected(self):
        with pytest.raises(ValueError):
            build_benchmark("db", size_scale=0)


class TestRunResultEdges:
    def test_identification_latency_clamped(self, small_config):
        result = run_benchmark("jack", "hotspot", small_config)
        assert 0.0 <= result.identification_latency <= 1.0

    def test_empty_hotspot_metrics_are_zero(self):
        from repro.sim.driver import RunResult

        empty = RunResult(
            benchmark="x", scheme="static", instructions=0, cycles=0.0,
            ipc=0.0, l1d_energy_nj=0.0, l2_energy_nj=0.0,
            l1d_breakdown={}, l2_breakdown={}, memory_nj=0.0,
            l1d_miss_rate=0.0, l2_miss_rate=0.0,
            branch_mispredict_rate=0.0, n_hotspots=0,
            instructions_in_hotspots=0,
        )
        assert empty.hotspot_coverage == 0.0
        assert empty.identification_latency == 0.0
        assert empty.avg_hotspot_size == 0.0
        assert empty.avg_invocations_per_hotspot == 0.0
