"""Shared fixtures: tiny deterministic programs and machines.

Tests run on small instruction budgets (tens to hundreds of thousands of
instructions); the calibrated full-length experiments live under
benchmarks/.
"""

from __future__ import annotations

import random

import pytest

from repro.isa.builder import ProgramBuilder
from repro.isa.program import Program
from repro.sim.config import ExperimentConfig, MachineConfig, build_machine
from repro.workloads.patterns import (
    StackBehavior,
    WorkingSetBehavior,
)

KB = 1024


def make_loop_program(
    trips: int = 20,
    body_insns: int = 30,
    loads: int = 6,
    stores: int = 2,
    span: int = 512,
    outer_trips: int = 100_000,
    callee: bool = True,
) -> Program:
    """main{ loop(outer){ call work } }; work{ loop(trips){ mem } }.

    ``work`` becomes a hotspot after a few outer iterations; its inclusive
    size is roughly ``trips * body_insns``.
    """
    builder = ProgramBuilder(entry="main")
    work = builder.method("work")
    work.region(0x2000_0000, span)
    work.straight("e", 4, "loop")
    work.loop(
        "loop",
        body_insns,
        trips,
        "x",
        loads=loads,
        stores=stores,
        memory=WorkingSetBehavior(span, locality=0.5),
    )
    work.ret("x", 2)
    work.done()

    main = builder.method("main")
    if callee:
        main.loop("top", 3, outer_trips, "end", calls=["work"])
    else:
        main.loop(
            "top", body_insns, outer_trips, "end",
            loads=loads, stores=stores, memory=StackBehavior(),
        )
    main.ret("end", 1)
    main.done()
    return builder.build()


def make_two_tier_program(
    mid_trips: int = 25,
    driver_trips: int = 8,
    mid_span: int = 600,
    driver_span: int = 12 * KB,
    outer_trips: int = 100_000,
) -> Program:
    """main -> driver (L2-band) -> mid (L1D-band): the nesting shape the
    framework manages."""
    builder = ProgramBuilder(entry="main")

    mid = builder.method("mid")
    mid.region(0x2000_0000, mid_span)
    mid.straight("e", 5, "loop")
    mid.loop(
        "loop", 40, mid_trips, "x",
        loads=8, stores=3,
        memory=WorkingSetBehavior(mid_span, locality=0.6),
    )
    mid.ret("x", 2)
    mid.done()

    driver = builder.method("driver")
    driver.region(0x3000_0000, driver_span)
    driver.straight("e", 6, "loop")
    driver.loop(
        "loop", 30, driver_trips, "x",
        loads=6, stores=2,
        memory=WorkingSetBehavior(driver_span, locality=0.2),
        calls=["mid"],
    )
    driver.ret("x", 2)
    driver.done()

    main = builder.method("main")
    main.loop("top", 3, outer_trips, "end", calls=["driver"])
    main.ret("end", 1)
    main.done()
    return builder.build()


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help=(
            "Rewrite tests/golden/*.json from the current simulation "
            "instead of comparing against it (then commit the diff)."
        ),
    )


@pytest.fixture
def update_golden(request) -> bool:
    """True when the run should regenerate golden-trace fixtures."""
    return request.config.getoption("--update-golden")


@pytest.fixture
def loop_program() -> Program:
    return make_loop_program()


@pytest.fixture
def two_tier_program() -> Program:
    return make_two_tier_program()


@pytest.fixture
def machine():
    return build_machine(MachineConfig())


@pytest.fixture
def small_config() -> ExperimentConfig:
    return ExperimentConfig(max_instructions=200_000)


@pytest.fixture
def rng() -> random.Random:
    return random.Random(42)
