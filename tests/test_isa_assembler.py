"""Unit tests for the textual assembler."""

import pytest

from repro.isa.assembler import AssemblyError, assemble
from repro.isa.program import (
    AlternatingDecider,
    CondBranch,
    Goto,
    LoopDecider,
    RandomDecider,
    Return,
)

SIMPLE = """
# a small two-method program
entry main

method helper {
    block b0 {
        insns 8
        loads 2
        ret
    }
}

method main {
    region 0x200000 4096
    attr tier driver
    block top {
        insns 12
        stores 1
        call helper
        loop trips=10 exit=done
    }
    block done {
        insns 2
        ret
    }
}
"""


class TestAssembleBasics:
    def test_simple_program(self):
        program = assemble(SIMPLE)
        assert program.entry == "main"
        assert set(program.methods) == {"helper", "main"}
        assert program.is_laid_out

    def test_region_and_attr(self):
        program = assemble(SIMPLE)
        main = program.methods["main"]
        assert main.region.base == 0x200000
        assert main.region.size == 4096
        assert main.attributes["tier"] == "driver"

    def test_loop_terminator(self):
        program = assemble(SIMPLE)
        top = program.methods["main"].blocks["top"]
        assert isinstance(top.terminator, CondBranch)
        assert isinstance(top.terminator.decider, LoopDecider)
        assert top.terminator.decider.trips == 10
        assert top.terminator.taken == "top"
        assert top.terminator.fallthrough == "done"

    def test_calls_and_counts(self):
        program = assemble(SIMPLE)
        top = program.methods["main"].blocks["top"]
        assert top.calls[0].callee == "helper"
        assert top.mix.stores == 1

    def test_entry_defaults_to_first_method(self):
        program = assemble(
            "method only {\n block b {\n insns 3\n ret\n }\n}\n"
        )
        assert program.entry == "only"


class TestTerminatorDirectives:
    def test_goto(self):
        text = (
            "method m {\n"
            " block a {\n insns 2\n goto b\n }\n"
            " block b {\n insns 1\n ret\n }\n"
            "}\n"
        )
        blocks = assemble(text).methods["m"].blocks
        assert isinstance(blocks["a"].terminator, Goto)
        assert isinstance(blocks["b"].terminator, Return)

    def test_probabilistic_branch(self):
        text = (
            "method m {\n"
            " block a {\n insns 2\n branch taken=t fall=f p=0.25\n }\n"
            " block t {\n insns 1\n ret\n }\n"
            " block f {\n insns 1\n ret\n }\n"
            "}\n"
        )
        term = assemble(text).methods["m"].blocks["a"].terminator
        assert isinstance(term.decider, RandomDecider)
        assert term.decider.p_taken == 0.25

    def test_alternating_branch(self):
        text = (
            "method m {\n"
            " block a {\n insns 2\n branch taken=t fall=f alt=4\n }\n"
            " block t {\n insns 1\n ret\n }\n"
            " block f {\n insns 1\n ret\n }\n"
            "}\n"
        )
        term = assemble(text).methods["m"].blocks["a"].terminator
        assert isinstance(term.decider, AlternatingDecider)
        assert term.decider.period == 4

    def test_loop_with_body(self):
        text = (
            "method m {\n"
            " block h {\n insns 2\n loop trips=3 exit=x body=b\n }\n"
            " block b {\n insns 2\n goto h\n }\n"
            " block x {\n insns 1\n ret\n }\n"
            "}\n"
        )
        term = assemble(text).methods["m"].blocks["h"].terminator
        assert term.taken == "b"


class TestMemDirectives:
    def test_workingset(self):
        text = (
            "method m {\n"
            " block a {\n insns 6\n loads 2\n"
            " mem workingset span=2048 locality=0.7\n ret\n }\n"
            "}\n"
        )
        memory = assemble(text).methods["m"].blocks["a"].memory
        assert memory.span == 2048
        assert memory.locality == 0.7

    def test_stride(self):
        text = (
            "method m {\n"
            " block a {\n insns 6\n loads 2\n"
            " mem stride span=4096 stride=64\n ret\n }\n"
            "}\n"
        )
        memory = assemble(text).methods["m"].blocks["a"].memory
        assert memory.stride == 64

    def test_unknown_kind_reports_line(self):
        text = (
            "method m {\n"
            " block a {\n insns 6\n mem bogus span=1\n ret\n }\n"
            "}\n"
        )
        with pytest.raises(AssemblyError) as err:
            assemble(text)
        assert err.value.lineno == 4  # the 'mem bogus' line


class TestErrors:
    @pytest.mark.parametrize(
        "text, needle",
        [
            ("method m {\n block a {\n insns 1\n }\n}\n", "terminator"),
            ("method m {\n block a {\n insns 1\n ret\n goto b\n }\n}\n",
             "already has a terminator"),
            ("method m {\n}\n", "no blocks"),
            ("junk\n", "unexpected directive"),
            ("method m {\n block a {\n insns xyz\n ret\n }\n}\n",
             "expected integer"),
            ("method m {\n block a {\n insns 1\n loop trips=2\n ret\n }\n}\n",
             "usage: loop"),
        ],
    )
    def test_malformed_inputs(self, text, needle):
        with pytest.raises(AssemblyError) as err:
            assemble(text)
        assert needle in str(err.value)

    def test_unclosed_method(self):
        with pytest.raises(AssemblyError):
            assemble("method m {\n block a {\n insns 1\n ret\n }\n")

    def test_empty_input(self):
        with pytest.raises(AssemblyError):
            assemble("")

    def test_semantic_errors_surface_as_validation(self):
        from repro.isa.program import ProgramValidationError

        text = (
            "method m {\n"
            " block a {\n insns 2\n goto missing\n }\n"
            "}\n"
        )
        with pytest.raises(ProgramValidationError):
            assemble(text)
