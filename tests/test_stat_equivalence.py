"""Statistical equivalence gate: turbo vs fast (tests/stat_equivalence.py).

Tier-1 runs a representative subset (both contract levels: batched
baseline cells under tolerances, deoptimised measuring-policy cells
bit-exact).  The ``slow`` test runs the full benchmark × scheme grid at
a larger budget and writes the deviation-report artifact when
``STAT_EQUIV_REPORT`` is set (the nightly workflow uploads it).
"""

from __future__ import annotations

import pytest

pytest.importorskip("numpy", reason="turbo kernel requires numpy")

from repro.sim.config import ExperimentConfig

from tests.stat_equivalence import (
    MEASURING_SCHEMES,
    assert_cell_stat_equivalent,
    continuous_metrics,
    grid_cells,
    load_tolerance_spec,
    run_with_decisions,
    write_report_if_requested,
)
from tests.tolerances import DeviationReport

#: Tier-1 subset: the two worst-deviating batched cells plus one cell
#: per measuring policy (where turbo must be bit-exact), and a threaded
#: benchmark for the scalar-inheritance path.
SUBSET = [
    ("db", "baseline"),
    ("jack", "baseline"),
    ("db", "bbv"),
    ("db", "hotspot"),
    ("mtrt", "hotspot"),
]


@pytest.mark.parametrize("bench,scheme", SUBSET)
def test_subset_cell_stat_equivalent(bench, scheme):
    assert_cell_stat_equivalent(bench, scheme, max_instructions=400_000)


@pytest.mark.slow
def test_full_grid_stat_equivalent():
    """Every cell of the 7×3 grid at 1.2M instructions, one report."""
    report = DeviationReport()
    spec = load_tolerance_spec()
    failures = []
    try:
        for benchmark, scheme in grid_cells():
            try:
                assert_cell_stat_equivalent(
                    benchmark, scheme,
                    max_instructions=1_200_000,
                    report=report, spec=spec,
                )
            except AssertionError as exc:
                failures.append(str(exc))
    finally:
        write_report_if_requested(report)
    if failures:
        raise AssertionError(
            f"{len(failures)} cell(s) failed statistical equivalence:\n"
            + "\n".join(failures)
            + "\n\n" + report.render(n=20)
        )


def test_turbo_config_auto_selects_split_decider_stream():
    config = ExperimentConfig(sim_kernel="turbo")
    assert config.decider_stream == "split"
    # ...and the default stays byte-compatible shared.
    assert ExperimentConfig().decider_stream == "shared"


def test_exact_harness_refuses_turbo():
    """Turbo never enters the bit-identical harness's kernel list."""
    from tests.equivalence import KERNELS

    assert "turbo" not in KERNELS


def test_spec_covers_exactly_the_gated_metrics():
    """Adding a metric without a committed budget (or a stale spec
    entry for a dropped metric) must fail loudly."""
    spec = load_tolerance_spec()
    result, _ = run_with_decisions("db", "baseline", "fast", 50_000)
    assert set(spec) == set(continuous_metrics(result))


def test_measuring_cells_are_bit_exact():
    """Under a measuring policy the deoptimised turbo RunResult is
    byte-for-byte the fast one — stronger than any tolerance."""
    assert set(MEASURING_SCHEMES) == {"bbv", "hotspot"}
    fast, _ = run_with_decisions("jess", "hotspot", "fast", 200_000)
    turbo, _ = run_with_decisions("jess", "hotspot", "turbo", 200_000)
    assert fast.to_dict() == turbo.to_dict()


def test_deviation_report_records_every_grid_metric():
    report = DeviationReport()
    assert_cell_stat_equivalent(
        "db", "baseline", max_instructions=100_000, report=report
    )
    spec = load_tolerance_spec()
    assert len(report.deviations) == len(spec)
    assert not report.failures()
