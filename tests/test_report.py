"""Tests for rendering and the exhibit builders."""

import pytest

from repro.report.exhibits import (
    figure1,
    figure3,
    figure4,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
)
from repro.report.figures import render_bar_chart, render_grouped_bars
from repro.report.paper import BENCHMARK_ORDER, PAPER, per_benchmark
from repro.report.tables import render_kv_table, render_table
from repro.sim.config import ExperimentConfig
from repro.sim.experiment import run_suite


@pytest.fixture(scope="module")
def tiny_suite():
    """A 2-benchmark suite at a small budget, shared across tests."""
    config = ExperimentConfig(max_instructions=400_000)
    return run_suite(["db", "javac"], config)


class TestTables:
    def test_render_table_alignment(self):
        text = render_table(
            ["name", "value"], [["a", 1], ["bb", 22]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert all(len(line) == len(lines[1]) for line in lines[1:])

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a"], [["x", "y"]])

    def test_kv_table(self):
        text = render_kv_table({"k": "v"})
        assert "k" in text and "v" in text

    def test_number_formatting(self):
        text = render_table(["n"], [[1234567], [0.5]])
        assert "1,234,567" in text
        assert "0.50" in text


class TestFigures:
    def test_bar_chart(self):
        text = render_bar_chart({"a": 0.5, "b": 1.0}, title="F")
        assert "#" in text
        assert "100.0%" in text

    def test_grouped_bars(self):
        text = render_grouped_bars(
            ["g1", "g2"], {"x": [0.1, 0.2], "y": [0.3, 0.4]}
        )
        assert "g1:" in text and "g2:" in text

    def test_grouped_bars_length_check(self):
        with pytest.raises(ValueError):
            render_grouped_bars(["g1"], {"x": [0.1, 0.2]})


class TestPaperValues:
    def test_per_benchmark_mapping(self):
        mapping = per_benchmark([1, 2, 3, 4, 5, 6, 7])
        assert mapping["compress"] == 1
        assert mapping["mtrt"] == 7
        with pytest.raises(ValueError):
            per_benchmark([1, 2])

    def test_headline_numbers_present(self):
        assert PAPER["figure3"]["avg_l1d_reduction"]["hotspot"] == 0.47
        assert PAPER["figure4"]["avg"]["bbv"] == 0.0187
        assert len(BENCHMARK_ORDER) == 7


class TestStaticExhibits:
    def test_table2_renders(self):
        exhibit = table2()
        assert "L1 D-cache" in exhibit.rendered
        assert "8KB/4KB/2KB/1KB" in exhibit.rendered

    def test_table3_covers_all_benchmarks(self):
        exhibit = table3()
        for name in BENCHMARK_ORDER:
            assert name in exhibit.rendered


class TestSuiteExhibits:
    def test_figure1(self, tiny_suite):
        exhibit = figure1(tiny_suite)
        assert "stable" in exhibit.rendered
        assert 0 <= exhibit.data["stable"]["db"] <= 1
        assert exhibit.data["stable"]["avg"] == pytest.approx(
            (exhibit.data["stable"]["db"]
             + exhibit.data["stable"]["javac"]) / 2
        )

    def test_table1(self, tiny_suite):
        exhibit = table1(tiny_suite)
        assert exhibit.data["avg_hotspot_trials"] >= 0
        assert "hot_threshold" in exhibit.rendered

    def test_table4(self, tiny_suite):
        exhibit = table4(tiny_suite)
        counts = exhibit.data["number of hotspots"]
        assert counts["db"] > 0
        assert exhibit.data["% of code in hotspots"]["db"] > 50

    def test_table5(self, tiny_suite):
        exhibit = table5(tiny_suite)
        hot = exhibit.data["hotspot"]
        assert hot["total managed hotspots"]["db"] >= 1
        bbv = exhibit.data["bbv"]
        assert bbv["number of phases"]["db"] >= 1

    def test_table6(self, tiny_suite):
        exhibit = table6(tiny_suite)
        assert exhibit.data["hotspot L1D tunings"]["db"] >= 0
        assert "BBV L1D tunings" in exhibit.rendered

    def test_figure3(self, tiny_suite):
        exhibit = figure3(tiny_suite)
        assert "L1D" in exhibit.data and "L2" in exhibit.data
        assert "avg" in exhibit.data["L1D"]["hotspot"]

    def test_figure4(self, tiny_suite):
        exhibit = figure4(tiny_suite)
        assert set(exhibit.data) == {"bbv", "hotspot"}
        assert "Figure 4" in exhibit.rendered
