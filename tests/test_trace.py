"""Unit tests for trace events and interval utilities."""

import pytest

from repro.trace.events import BlockEvent, MethodEvent, TraceStats
from repro.trace.stream import IntervalSplitter, TraceRecorder, replay


def event(n=10, loads=0, stores=0, branch_pc=0x4000, taken=True):
    return BlockEvent(
        "m", "b", n, [0x100] * loads, [0x200] * stores,
        branch_pc, taken,
    )


class TestBlockEvent:
    def test_memory_refs(self):
        ev = event(loads=3, stores=2)
        assert ev.memory_refs == 5

    def test_block_pc_defaults_to_branch_pc(self):
        ev = event(branch_pc=0x4242)
        assert ev.block_pc == 0x4242

    def test_block_pc_explicit(self):
        ev = BlockEvent("m", "b", 5, [], [], None, True, block_pc=0x9000)
        assert ev.block_pc == 0x9000
        assert ev.branch_pc is None


class TestMethodEvent:
    def test_kinds(self):
        MethodEvent(MethodEvent.ENTRY, "m", 0, 100)
        with pytest.raises(ValueError):
            MethodEvent("bogus", "m", 0, 0)


class TestTraceStats:
    def test_observe_accumulates(self):
        stats = TraceStats()
        stats.observe(event(n=10, loads=2, stores=1, taken=True))
        stats.observe(event(n=5, branch_pc=None))
        assert stats.blocks == 2
        assert stats.instructions == 15
        assert stats.memory_refs == 3
        assert stats.conditional_branches == 1
        assert stats.taken_branches == 1

    def test_memory_intensity(self):
        stats = TraceStats()
        stats.observe(event(n=10, loads=2))
        assert stats.memory_intensity == pytest.approx(0.2)
        assert TraceStats().memory_intensity == 0.0


class TestIntervalSplitter:
    def test_fires_at_boundaries(self):
        fired = []
        splitter = IntervalSplitter(100, lambda i, n: fired.append((i, n)))
        splitter.advance(60)
        assert fired == []
        splitter.advance(60)
        assert fired == [(0, 100)]
        assert splitter.instructions_in_current == 20

    def test_large_block_crosses_multiple(self):
        fired = []
        splitter = IntervalSplitter(10, lambda i, n: fired.append(i))
        crossed = splitter.advance(35)
        assert crossed == 3
        assert fired == [0, 1, 2]
        assert splitter.instructions_in_current == 5

    def test_flush_emits_partial(self):
        fired = []
        splitter = IntervalSplitter(
            100, lambda i, n: fired.append((i, n))
        )
        splitter.advance(30)
        splitter.flush()
        assert fired == [(0, 30)]
        splitter.flush()  # idempotent
        assert fired == [(0, 30)]

    def test_exact_multiple(self):
        fired = []
        splitter = IntervalSplitter(50, lambda i, n: fired.append(i))
        splitter.advance(100)
        assert fired == [0, 1]
        assert splitter.instructions_in_current == 0

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            IntervalSplitter(0, lambda i, n: None)


class TestTraceRecorder:
    def test_capacity_cap(self):
        recorder = TraceRecorder(capacity=2)
        for _ in range(5):
            recorder.observe(event())
        assert len(recorder) == 2
        assert recorder.dropped == 3
        assert recorder.stats.blocks == 5  # stats see everything

    def test_unbounded(self):
        recorder = TraceRecorder()
        for _ in range(5):
            recorder.observe(event())
        assert len(recorder) == 5


class TestReplay:
    def test_replay_feeds_sinks(self):
        events = [event(n=i) for i in range(1, 4)]
        seen = []
        stats = replay(events, seen.append)
        assert len(seen) == 3
        assert stats.instructions == 6

    def test_replay_through_cache_is_deterministic(self):
        from repro.uarch.cache import Cache

        events = [event(loads=4) for _ in range(10)]
        c1 = Cache("a", 1024, 64, 2, sizes=(1024,))
        c2 = Cache("b", 1024, 64, 2, sizes=(1024,))
        replay(events, lambda e: c1.access_many(e.loads, e.stores))
        replay(events, lambda e: c2.access_many(e.loads, e.stores))
        assert c1.stats.snapshot() == c2.stats.snapshot()
