"""Tests for the BBV tuner entries and the BBV ACE policy end to end."""

import pytest

from repro.core.tuning import TuningOutcome
from repro.phases.policy import BBVACEPolicy
from repro.phases.tuner import (
    PhaseTuningEntry,
    combinatorial_config_list,
)
from repro.sim.config import MachineConfig, build_machine
from repro.vm.vm import VMConfig, VirtualMachine
from tests.conftest import make_two_tier_program


def outcome(config, ipc, energy=1.0):
    return TuningOutcome(config, ipc, energy, 10_000)


class TestCombinatorialList:
    def test_full_product(self):
        configs = combinatorial_config_list([4, 4])
        assert len(configs) == 16
        assert configs[0] == (0, 0)
        assert configs[-1] == (3, 3)
        assert len(set(configs)) == 16

    def test_last_cu_varies_fastest(self):
        configs = combinatorial_config_list([2, 3])
        assert configs[:3] == [(0, 0), (0, 1), (0, 2)]


class TestPhaseTuningEntry:
    def make(self, counts=(2, 2)):
        return PhaseTuningEntry(0, ("L2", "L1D"), counts)

    def test_tests_all_configurations(self):
        entry = self.make()
        n = len(entry.config_list)
        for i in range(n - 1):
            assert not entry.record(
                outcome(entry.current_trial, 2.0, 1.0 / (i + 1)), 0.02
            )
        assert entry.record(outcome(entry.current_trial, 2.0, 0.01), 0.02)
        assert entry.tuned
        assert entry.current_trial is None

    def test_no_early_exit_even_on_terrible_config(self):
        entry = self.make()
        entry.record(outcome((0, 0), 2.0), 0.02)
        entry.record(outcome((0, 1), 0.2), 0.02)  # terrible
        assert not entry.tuned  # BBV tests all combinations (Table 1)

    def test_resume_after_interruption(self):
        entry = self.make()
        entry.record(outcome((0, 0), 2.0), 0.02)
        # "Phase disappears" — nothing recorded for a while — then
        # resumes from the next untested configuration.
        assert entry.current_trial == (0, 1)

    def test_record_after_completion_rejected(self):
        entry = PhaseTuningEntry(0, ("L1D",), (1,))
        entry.record(outcome((0,), 2.0), 0.02)
        with pytest.raises(RuntimeError):
            entry.record(outcome((0,), 2.0), 0.02)

    def test_verification_scheduled_on_completion(self):
        entry = PhaseTuningEntry(0, ("L1D",), (2,))
        entry.record(outcome((0,), 2.0, 1.0), 0.5)
        entry.record(outcome((1,), 2.0, 0.5), 0.5)
        assert entry.tuned
        assert entry.verify_pending
        assert entry.verification_target() == (1,)

    def test_demote(self):
        entry = PhaseTuningEntry(0, ("L1D",), (3,))
        for c in entry.config_list:
            entry.record(outcome(c, 2.0, 1.0), 0.9)
        entry.best = TuningOutcome((2,), 2.0, 0.1, 100)
        assert entry.demote()
        assert entry.best.config == (1,)


class TestBBVPolicyEndToEnd:
    def run_policy(self, max_instructions=800_000):
        machine = build_machine(MachineConfig())
        policy = BBVACEPolicy()
        vm = VirtualMachine(
            make_two_tier_program(), machine,
            policy=policy, config=VMConfig(hot_threshold=3),
        )
        vm.run(max_instructions)
        return vm, policy

    def test_cu_order_slowest_first(self):
        _, policy = self.run_policy(max_instructions=50_000)
        assert policy.cu_names == ("L2", "L1D")

    def test_sampling_interval_matches_slowest_cu(self):
        _, policy = self.run_policy(max_instructions=50_000)
        assert policy.sampling_interval == 10_000

    def test_phases_detected(self):
        _, policy = self.run_policy()
        stats = policy.finalize()
        assert stats.n_phases >= 1
        assert stats.intervals_total >= 70

    def test_homogeneous_program_tunes_its_phase(self):
        # One driver looping forever: a single dominant stable phase with
        # plenty of intervals to finish all 16 + warm-up trials.
        _, policy = self.run_policy(max_instructions=1_200_000)
        stats = policy.finalize()
        assert stats.tuned_phases >= 1
        assert stats.tuned_interval_fraction > 0.3

    def test_trial_accounting(self):
        _, policy = self.run_policy(max_instructions=1_200_000)
        stats = policy.finalize()
        assert stats.tunings["L1D"] >= 3
        assert stats.tunings["L2"] >= 3

    def test_stable_fraction_high_for_steady_program(self):
        _, policy = self.run_policy()
        stats = policy.finalize()
        assert stats.occurrence_stats.stable_fraction > 0.8

    def test_coverage_bounded(self):
        _, policy = self.run_policy(max_instructions=1_200_000)
        stats = policy.finalize()
        for value in stats.coverage.values():
            assert 0.0 <= value <= 1.0
