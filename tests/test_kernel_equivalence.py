"""Differential equivalence: the fast kernel is bit-identical to the
reference interpreter.

Every cell runs twice — ``sim_kernel="reference"`` and ``"fast"`` — and
the full :class:`RunResult` tree, the simulated-clock telemetry
timeline, and the pinned configurations must match exactly (floats to
the last ulp; see ``tests/equivalence.py``).  The grid covers:

* every benchmark and every scheme (the cross-product lives in the
  ``slow``-marked suite; tier-1 keeps a representative diagonal);
* config variants that change kernel-visible behaviour: flush-policy
  resizes, pipeline CUs, alternative seeds, a lower hot threshold;
* fault-injected cells (reconfiguration denials, profiling noise, a
  forced mid-run drift) — the injection hooks must fire identically in
  both kernels.

The harness self-tests at the bottom pin the failure mode: when kernels
*do* diverge, the error names the first differing metric path or event
index rather than dumping two opaque blobs.
"""

from __future__ import annotations

import pytest

from repro.sim.config import MachineConfig
from repro.sim.driver import SCHEMES
from repro.workloads.specjvm import benchmark_names
from tests.equivalence import (
    assert_cell_equivalent,
    assert_equivalent,
    first_divergence,
    simulated_timeline,
)

#: Representative diagonal for tier-1: every benchmark appears once,
#: every scheme several times, and mtrt covers the multi-threaded
#: quantum interpreter path.
FAST_GRID = [
    ("db", "baseline"),
    ("db", "hotspot"),
    ("jack", "bbv"),
    ("jack", "hotspot"),
    ("compress", "baseline"),
    ("jess", "bbv"),
    ("javac", "hotspot"),
    ("mpegaudio", "baseline"),
    ("mtrt", "hotspot"),
    ("mtrt", "bbv"),
]

#: Config variants that reach kernel-visible branches.
CONFIG_CASES = {
    "flush-resize": {"machine": MachineConfig(resize_policy="flush")},
    "pipeline-cus": {
        "machine": MachineConfig(
            enable_pipeline_cus=True, record_reconfigurations=True
        )
    },
    "alt-seed": {"seed": 777},
    "eager-hotspots": {"hot_threshold": 2},
}

#: Fault plans that perturb the simulation itself (never cached, but
#: must still be kernel-independent).
FAULT_CASES = {
    "reconfig-deny": "seed=7,reconfig_deny=0.5",
    "profile-noise": "seed=3,profile_noise=0.25",
    "drift-retune": (
        "seed=5,profile_noise=0.05,drift_at=120000,"
        "drift_ipc_factor=0.6,drift_config_penalty=0.08"
    ),
}


@pytest.mark.parametrize("bench,scheme", FAST_GRID)
def test_kernel_equivalence_grid(bench, scheme):
    result = assert_cell_equivalent(bench, scheme)
    assert result.instructions > 0


@pytest.mark.parametrize("case", sorted(CONFIG_CASES))
def test_kernel_equivalence_config_variants(case):
    assert_cell_equivalent(
        "db", "hotspot", config_kwargs=CONFIG_CASES[case]
    )


@pytest.mark.parametrize("scheme", ["bbv", "hotspot"])
@pytest.mark.parametrize("case", sorted(FAULT_CASES))
def test_kernel_equivalence_under_faults(case, scheme):
    assert_cell_equivalent(
        "jack", scheme, fault_spec=FAULT_CASES[case]
    )


@pytest.mark.slow
@pytest.mark.parametrize("bench", benchmark_names())
@pytest.mark.parametrize("scheme", SCHEMES)
def test_kernel_equivalence_full_grid(bench, scheme):
    """The full benchmark x scheme cross-product at a heavier budget."""
    assert_cell_equivalent(bench, scheme, max_instructions=1_500_000)


@pytest.mark.slow
@pytest.mark.parametrize("case", sorted(FAULT_CASES))
def test_kernel_equivalence_faults_heavy(case):
    assert_cell_equivalent(
        "db", "hotspot",
        max_instructions=1_500_000,
        fault_spec=FAULT_CASES[case],
    )


# -- harness self-tests ------------------------------------------------------


def test_kernel_list_is_registry_driven():
    """The harness's kernel list is exactly the registry's bit-identical
    subset, reference first; tolerance-gated kernels (turbo) are
    excluded here and in the golden-trace suite by construction."""
    from repro.sim.driver import KERNEL_REGISTRY
    from tests.equivalence import KERNELS

    bit_identical = {
        name for name, spec in KERNEL_REGISTRY.items() if spec.bit_identical
    }
    assert set(KERNELS) == bit_identical
    assert KERNELS[0] == "reference"
    assert "turbo" in KERNEL_REGISTRY
    assert not KERNEL_REGISTRY["turbo"].bit_identical
    assert "turbo" not in KERNELS


def test_first_divergence_names_the_leaf():
    a = {"metrics": {"ipc": 1.25, "cycles": [1.0, 2.0]}}
    b = {"metrics": {"ipc": 1.25, "cycles": [1.0, 3.0]}}
    assert first_divergence(a, b) == ("$.metrics.cycles[1]", 2.0, 3.0)


def test_first_divergence_reports_missing_keys_and_lengths():
    assert first_divergence({"a": 1}, {}) == ("$.a", 1, "<absent>")
    assert first_divergence([1], [1, 2]) == ("$.length", 1, 2)
    assert first_divergence({"x": 1}, {"x": 1}) is None


def test_assert_equivalent_message_is_readable():
    with pytest.raises(AssertionError) as excinfo:
        assert_equivalent(
            "db/hotspot", {"ipc": 1.0}, {"ipc": 2.0}
        )
    message = str(excinfo.value)
    assert "db/hotspot" in message
    assert "$.ipc" in message
    assert "reference: 1.0" in message
    assert "fast:      2.0" in message


def test_timeline_excludes_wall_clock_events():
    from repro.obs.events import Telemetry

    telemetry = Telemetry()
    telemetry.emit("config_pinned", ts=1000.0, track="cu:l1d", config=(1, 0))
    telemetry.emit_wall("cell_start", cell="db/hotspot")
    timeline = simulated_timeline(telemetry)
    assert len(timeline) == 1
    assert timeline[0][0] == "config_pinned"
