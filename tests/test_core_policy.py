"""End-to-end tests of the hotspot ACE policy on small programs."""

from repro.core.policy import HotspotACEPolicy
from repro.core.tuning import TuningPhase
from repro.sim.config import MachineConfig, build_machine
from repro.vm.vm import VMConfig, VirtualMachine
from tests.conftest import make_loop_program, make_two_tier_program


def run_policy(program, max_instructions=400_000, policy=None,
               hot_threshold=3, thread_entries=None):
    machine = build_machine(MachineConfig())
    policy = policy or HotspotACEPolicy()
    vm = VirtualMachine(
        program, machine,
        policy=policy,
        config=VMConfig(hot_threshold=hot_threshold),
        thread_entries=thread_entries,
    )
    vm.run(max_instructions)
    return vm, policy


class TestLifecycle:
    def test_hotspot_detected_and_managed(self):
        vm, policy = run_policy(make_loop_program(trips=30))
        # work is ~30*38 insns ~ 1.1K inclusive: L1D band.
        assert "work" in policy.states
        assert policy.kind_of["work"] == "L1D"

    def test_tuning_completes_and_config_code_installed(self):
        vm, policy = run_policy(make_loop_program(trips=30))
        state = policy.states["work"]
        assert state.phase is TuningPhase.CONFIGURED
        assert state.best is not None
        assert policy.ever_tuned["work"]
        stub = vm.jit.entry_stub("work")
        assert stub is not None and stub.kind == "config"

    def test_small_working_set_downsizes_l1d(self):
        vm, policy = run_policy(
            make_loop_program(trips=30, span=256), max_instructions=600_000
        )
        state = policy.states["work"]
        # 256B working set fits every size; energy prefers the smallest.
        assert state.best.config[0] >= 2

    def test_tiny_hotspots_unmanaged(self):
        vm, policy = run_policy(make_loop_program(trips=2, body_insns=10))
        assert "work" in policy.unmanaged
        assert vm.jit.entry_stub("work") is None

    def test_two_tier_nesting_assigns_both_cus(self):
        vm, policy = run_policy(
            make_two_tier_program(), max_instructions=800_000
        )
        kinds = {policy.kind_of[n] for n in policy.states}
        assert "L1D" in kinds and "L2" in kinds

    def test_coverage_accounting(self):
        vm, policy = run_policy(
            make_loop_program(trips=30), max_instructions=600_000
        )
        stats = policy.finalize()
        assert 0.0 < stats.coverage["L1D"] <= 1.0
        # Coverage depths must balance at the end of the run (at most the
        # in-flight activation per thread).
        for depths in policy._cov_depth.values():
            assert all(d >= 0 for d in depths)

    def test_trials_and_reconfigs_counted(self):
        vm, policy = run_policy(
            make_loop_program(trips=30, span=256),
            max_instructions=600_000,
        )
        stats = policy.finalize()
        assert stats.tunings["L1D"] >= 1
        assert stats.reconfigs["L1D"] >= 0
        assert stats.managed_hotspots == 1
        assert stats.tuned_hotspots == 1

    def test_per_hotspot_ipc_stats(self):
        vm, policy = run_policy(
            make_loop_program(trips=30), max_instructions=600_000
        )
        stats = policy.finalize()
        assert "work" in stats.hotspot_mean_ipc
        assert stats.hotspot_mean_ipc["work"] > 0


class TestDecouplingAblation:
    def test_no_decoupling_tunes_all_cus(self):
        policy = HotspotACEPolicy(decoupling=False)
        vm, policy = run_policy(
            make_two_tier_program(), policy=policy,
            max_instructions=400_000,
        )
        for state in policy.states.values():
            assert set(state.cu_names) == {"L1D", "L2"}
            assert len(state.config_list) == 16

    def test_decoupled_config_lists_are_small(self):
        vm, policy = run_policy(make_two_tier_program())
        for state in policy.states.values():
            assert len(state.config_list) == 4


class TestRetuning:
    def test_retuning_disabled(self):
        policy = HotspotACEPolicy(enable_retuning=False)
        vm, policy = run_policy(
            make_loop_program(trips=30), policy=policy,
            max_instructions=600_000,
        )
        assert policy.retunes == 0

    def test_stable_workload_rarely_retunes(self):
        vm, policy = run_policy(
            make_loop_program(trips=30), max_instructions=800_000
        )
        assert policy.retunes <= 1


class TestStatsFinalize:
    def test_finalize_fields(self):
        vm, policy = run_policy(
            make_two_tier_program(), max_instructions=600_000
        )
        stats = policy.finalize()
        assert stats.managed_hotspots == len(policy.states)
        assert set(stats.tunings) == {"L1D", "L2"}
        assert stats.tuned_fraction <= 1.0
        assert stats.hotspots_by_kind
        total_by_kind = sum(stats.hotspots_by_kind.values())
        assert total_by_kind == (
            stats.managed_hotspots + stats.unmanaged_hotspots
        )

    def test_on_run_end_populates_final_stats(self):
        vm, policy = run_policy(make_loop_program())
        assert hasattr(policy, "final_stats")
        assert policy.final_stats.managed_hotspots >= 0


class TestPrediction:
    def test_predictor_seeds_config_list(self):
        from repro.core.prediction import (
            FootprintPredictor,
            install_program_for_prediction,
        )

        program = make_loop_program(trips=30, span=256)
        machine = build_machine(MachineConfig())
        install_program_for_prediction(machine, program)
        policy = HotspotACEPolicy(predictor=FootprintPredictor())
        vm = VirtualMachine(
            program, machine, policy=policy,
            config=VMConfig(hot_threshold=3),
        )
        vm.run(300_000)
        state = policy.states["work"]
        # 256B footprint * 1.5 headroom -> smallest (1 KB) cache, hoisted
        # right after the reference.
        assert state.config_list[1] == (3,)
        assert policy.predictor.predictions >= 1
