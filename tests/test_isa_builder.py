"""Unit tests for the program/method builders."""

import pytest

from repro.isa.builder import MethodBuilder, ProgramBuilder
from repro.isa.program import (
    CondBranch,
    Goto,
    ProgramValidationError,
    RandomDecider,
    Return,
)
from repro.workloads.patterns import StackBehavior


class TestMethodBuilder:
    def test_entry_defaults_to_first_block(self):
        method = (
            MethodBuilder("m")
            .straight("a", 5, "b")
            .ret("b")
            .build()
        )
        assert method.entry == "a"

    def test_explicit_entry(self):
        method = (
            MethodBuilder("m")
            .ret("end")
            .straight("start", 5, "end")
            .entry("start")
            .build()
        )
        assert method.entry == "start"

    def test_region_and_attributes(self):
        method = (
            MethodBuilder("m")
            .region(0x1000, 64)
            .attribute("tier", "mid")
            .ret("b0")
            .build()
        )
        assert method.region.base == 0x1000
        assert method.attributes["tier"] == "mid"

    def test_loop_block_self_edge(self):
        method = (
            MethodBuilder("m")
            .loop("l", 10, 4, "x")
            .ret("x")
            .build()
        )
        term = method.blocks["l"].terminator
        assert isinstance(term, CondBranch)
        assert term.taken == "l"
        assert term.fallthrough == "x"

    def test_loop_block_explicit_body(self):
        method = (
            MethodBuilder("m")
            .loop("h", 10, 4, "x", body_bid="body")
            .straight("body", 5, "h")
            .ret("x")
            .build()
        )
        assert method.blocks["h"].terminator.taken == "body"

    def test_branch_block(self):
        method = (
            MethodBuilder("m")
            .branch("b", 8, RandomDecider(0.3), taken="t", fallthrough="f")
            .ret("t")
            .ret("f")
            .build()
        )
        term = method.blocks["b"].terminator
        assert term.taken == "t" and term.fallthrough == "f"

    def test_memory_and_calls_attached(self):
        memory = StackBehavior()
        method = (
            MethodBuilder("m")
            .straight("a", 10, "b", loads=2, memory=memory, calls=["f"])
            .ret("b")
            .build()
        )
        a = method.blocks["a"]
        assert a.memory is memory
        assert a.calls[0].callee == "f"
        assert a.mix.loads == 2

    def test_empty_method_rejected(self):
        with pytest.raises(ProgramValidationError):
            MethodBuilder("m").build()

    def test_done_requires_program_context(self):
        builder = MethodBuilder("m").ret("b0")
        with pytest.raises(RuntimeError):
            builder.done()


class TestProgramBuilder:
    def test_build_validates_and_lays_out(self):
        program = (
            ProgramBuilder(entry="main")
            .method("main").ret("b0").done()
            .build()
        )
        assert program.is_laid_out
        assert program.entry == "main"

    def test_fluent_multi_method(self):
        program = (
            ProgramBuilder(entry="main")
            .method("helper").ret("b0").done()
            .method("main")
            .straight("a", 5, "b", calls=["helper"])
            .ret("b")
            .done()
            .build()
        )
        assert set(program.methods) == {"helper", "main"}

    def test_invalid_program_raises_on_build(self):
        builder = (
            ProgramBuilder(entry="main")
            .method("main")
            .straight("a", 5, "a")  # no return reachable
            .done()
        )
        with pytest.raises(ProgramValidationError):
            builder.build()

    def test_custom_base_address(self):
        program = (
            ProgramBuilder(entry="m")
            .method("m").ret("b0").done()
            .build(base=0x40_0000)
        )
        assert program.methods["m"].blocks["b0"].base_pc == 0x40_0000

    def test_goto_terminator_type(self):
        program = (
            ProgramBuilder(entry="m")
            .method("m").straight("a", 3, "b").ret("b").done()
            .build()
        )
        blocks = program.methods["m"].blocks
        assert isinstance(blocks["a"].terminator, Goto)
        assert isinstance(blocks["b"].terminator, Return)
