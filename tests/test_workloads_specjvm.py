"""Tests for workload templates and the SPECjvm98 stand-in generators."""

import random

import pytest

from repro.isa.program import CondBranch
from repro.workloads.specjvm import (
    BENCHMARK_NAMES,
    SPECJVM_DESCRIPTIONS,
    benchmark_spec,
    build_benchmark,
    build_suite,
)
from repro.workloads.synthetic import random_program
from repro.workloads.templates import (
    driver_method,
    jittered_trips,
    leaf_method,
    loop_method,
    phased_driver_method,
)


class TestTemplates:
    def test_jittered_trips_distribution(self):
        draw = jittered_trips(100, jitter=0.1)
        rng = random.Random(3)
        samples = [draw(rng) for _ in range(500)]
        assert all(s >= 1 for s in samples)
        assert 90 < sum(samples) / len(samples) < 110
        assert len(set(samples)) > 5

    def test_jittered_trips_zero_jitter_is_constant(self):
        draw = jittered_trips(10, jitter=0)
        rng = random.Random(0)
        assert {draw(rng) for _ in range(10)} == {10}

    def test_leaf_method_shape(self):
        method = leaf_method("leaf", 40, loads=3)
        assert method.static_instruction_count >= 40
        method.validate()

    def test_loop_method_shape(self):
        method = loop_method(
            "m", trips=5, body_insns=20, loads=4, stores=1,
            memory=None, callees=["f"],
        )
        assert set(method.blocks) == {"e", "loop", "x"}
        assert method.blocks["loop"].calls[0].callee == "f"

    def test_driver_method_single_mid(self):
        method = driver_method(
            "d", trips=5, body_insns=20, loads=4, stores=1,
            memory=None, mids=["m0"],
        )
        assert "s0" not in method.blocks
        assert method.blocks["c0"].calls[0].callee == "m0"
        method.validate()

    def test_driver_method_multi_mid_selection_chain(self):
        method = driver_method(
            "d", trips=5, body_insns=20, loads=4, stores=1,
            memory=None, mids=["m0", "m1", "m2"],
        )
        assert {"s0", "s1", "c0", "c1", "c2"} <= set(method.blocks)
        assert isinstance(method.blocks["s0"].terminator, CondBranch)
        method.validate()

    def test_driver_requires_mids(self):
        with pytest.raises(ValueError):
            driver_method(
                "d", trips=5, body_insns=10, loads=0, stores=0,
                memory=None, mids=[],
            )

    def test_phased_driver_script(self):
        method = phased_driver_method(
            "main", [("a", 3), ("b", 1)], outer_trips=10
        )
        assert {"seg0", "seg1", "wrap", "end"} <= set(method.blocks)
        assert method.blocks["seg0"].calls[0].callee == "a"
        assert method.blocks["wrap"].terminator.taken == "seg0"

    def test_phased_driver_rejects_bad_script(self):
        with pytest.raises(ValueError):
            phased_driver_method("main", [])
        with pytest.raises(ValueError):
            phased_driver_method("main", [("a", 0)])


class TestBenchmarkSpecs:
    def test_all_seven_defined(self):
        assert len(BENCHMARK_NAMES) == 7
        assert set(SPECJVM_DESCRIPTIONS) == set(BENCHMARK_NAMES)

    def test_spec_lookup(self):
        spec = benchmark_spec("db")
        assert spec.name == "db"
        assert spec.short_name == "db"
        assert benchmark_spec("compress").short_name == "comp"

    def test_unknown_spec_rejected_with_guidance(self):
        with pytest.raises(KeyError) as err:
            benchmark_spec("spec2017")
        assert "known" in str(err.value)

    def test_mtrt_is_dual_threaded(self):
        assert benchmark_spec("mtrt").threads == 2

    def test_javac_has_gc(self):
        assert benchmark_spec("javac").gc


class TestBuildBenchmark:
    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_builds_and_validates(self, name):
        built = build_benchmark(name)
        assert built.program.is_laid_out
        spec = built.spec
        tiers = [s.kind for s in built.library.specs]
        assert tiers.count("driver") == spec.n_drivers
        assert tiers.count("mid") == spec.n_mids
        assert tiers.count("leaf") == spec.n_leaves

    def test_thread_entries_match_spec(self):
        single = build_benchmark("db")
        assert single.thread_entries == ("main",)
        dual = build_benchmark("mtrt")
        assert dual.thread_entries == ("worker0", "worker1")

    def test_gc_method_present_when_configured(self):
        javac = build_benchmark("javac")
        assert "gc_sweep" in javac.program.methods
        db = build_benchmark("db")
        assert "gc_sweep" not in db.program.methods

    def test_deterministic_generation(self):
        a = build_benchmark("jess")
        b = build_benchmark("jess")
        assert (
            [s.target_size for s in a.library.specs]
            == [s.target_size for s in b.library.specs]
        )

    def test_seed_override_changes_structure(self):
        a = build_benchmark("jess")
        b = build_benchmark("jess", seed_override=999)
        assert (
            [s.target_size for s in a.library.specs]
            != [s.target_size for s in b.library.specs]
        )

    def test_drivers_call_distinct_mids(self):
        built = build_benchmark("jack")
        called = set()
        for spec in built.library.specs:
            if spec.kind == "driver":
                called.update(spec.callees)
        mids = {
            s.name for s in built.library.specs if s.kind == "mid"
        }
        # The rotation deals distinct mids to drivers; with more mids
        # than driver slots, the remainder is cold code (as real
        # programs have).
        assert called <= mids
        assert len(called) >= built.spec.n_drivers

    def test_mid_sizes_target_l1d_band(self):
        built = build_benchmark("db")
        for spec in built.library.specs:
            if spec.kind == "mid":
                assert 400 <= spec.target_size <= 6_000

    def test_driver_sizes_target_l2_band(self):
        built = build_benchmark("db")
        for spec in built.library.specs:
            if spec.kind == "driver":
                assert spec.target_size >= 4_000

    def test_regions_do_not_overlap(self):
        built = build_benchmark("javac")
        regions = sorted(
            (m.region.base, m.region.end)
            for m in built.program.methods.values()
            if m.region is not None
        )
        for (b1, e1), (b2, e2) in zip(regions, regions[1:]):
            assert e1 <= b2

    def test_build_suite_subset(self):
        suite = build_suite(["db", "mtrt"])
        assert [b.name for b in suite] == ["db", "mtrt"]


class TestSyntheticPrograms:
    @pytest.mark.parametrize("seed", range(12))
    def test_random_programs_valid(self, seed):
        program = random_program(seed)
        assert program.is_laid_out
        assert program.entry == "m0"

    def test_random_programs_terminate(self):
        from repro.sim.config import MachineConfig, build_machine
        from repro.vm.vm import VMConfig, VirtualMachine

        for seed in range(5):
            program = random_program(seed)
            machine = build_machine(MachineConfig())
            vm = VirtualMachine(program, machine, config=VMConfig())
            vm.run(1_000_000)
            assert vm.threads[0].finished
