"""Disassembler round-trip tests."""

from repro.isa.assembler import assemble
from repro.isa.disasm import disassemble_method, disassemble_program
from repro.workloads.specjvm import build_benchmark

SOURCE = """
entry main

method helper {
    block b0 {
        insns 8
        loads 2
        stores 1
        ret
    }
}

method main {
    region 0x200000 4096
    block top {
        insns 12
        call helper
        loop trips=10 exit=done
    }
    block alt {
        insns 4
        branch taken=top fall=done alt=3
    }
    block done {
        insns 2
        ret
    }
}
"""


def structural_signature(program):
    out = []
    for method in program.methods.values():
        for block in method.blocks.values():
            out.append(
                (
                    method.name,
                    block.bid,
                    block.n_instructions,
                    block.mix.loads,
                    block.mix.stores,
                    tuple(c.callee for c in block.calls),
                    tuple(block.successors()),
                )
            )
    return out


class TestRoundTrip:
    def test_assemble_disassemble_reassemble(self):
        original = assemble(SOURCE)
        text = disassemble_program(original)
        again = assemble(text)
        assert structural_signature(original) == structural_signature(again)
        assert again.entry == original.entry

    def test_benchmark_programs_disassemble(self):
        built = build_benchmark("db")
        text = disassemble_program(built.program)
        assert "method main" in text
        assert "driver0" in text
        # memory behaviours appear as comments
        assert "# mem" in text

    def test_listing_mode_includes_instructions(self):
        program = assemble(SOURCE)
        text = disassemble_method(
            program.methods["helper"], listing=True
        )
        assert "load" in text

    def test_unreachable_branch_decider_renders_with_note(self):
        program = assemble(SOURCE)
        alt = disassemble_method(program.methods["main"])
        assert "alt=3" in alt
