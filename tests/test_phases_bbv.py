"""Unit tests for BBV accumulation and phase classification."""

import pytest

from repro.phases.bbv import (
    BBVAccumulator,
    BBVConfig,
    manhattan_distance,
    normalize,
)
from repro.phases.classifier import PhaseClassifier


class TestManhattan:
    def test_distance(self):
        assert manhattan_distance([1, 2], [3, 0]) == 4
        assert manhattan_distance([0.5, 0.5], [0.5, 0.5]) == 0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            manhattan_distance([1], [1, 2])

    def test_normalize(self):
        assert normalize([2, 2]) == (0.5, 0.5)
        assert normalize([0, 0]) == (0.0, 0.0)

    def test_normalized_distance_bounded_by_two(self):
        a = normalize([10, 0, 0])
        b = normalize([0, 0, 10])
        assert manhattan_distance(a, b) == pytest.approx(2.0)


class TestAccumulator:
    def test_observe_buckets_by_pc(self):
        acc = BBVAccumulator(n_buckets=4, counter_bits=24)
        acc.observe(0x0, 10)   # bucket 0
        acc.observe(0x4, 5)    # bucket 1
        acc.observe(0x10, 3)   # bucket 0 (wraps: (0x10>>2)%4 == 0)
        assert acc.peek() == (13, 5, 0, 0)

    def test_harvest_clears(self):
        acc = BBVAccumulator(n_buckets=4)
        acc.observe(0x0, 7)
        vector = acc.harvest()
        assert vector[0] == 7
        assert acc.peek() == (0, 0, 0, 0)

    def test_saturation(self):
        acc = BBVAccumulator(n_buckets=2, counter_bits=4)
        acc.observe(0x0, 100)
        assert acc.peek()[0] == 15
        assert acc.saturations == 1

    def test_paper_geometry(self):
        config = BBVConfig()
        acc = BBVAccumulator(config.n_buckets, config.counter_bits)
        assert acc.n_buckets == 32
        assert acc.counter_max == (1 << 24) - 1

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            BBVAccumulator(n_buckets=0)


def vec(*hot_buckets, n=8, mass=1000):
    v = [0] * n
    for b in hot_buckets:
        v[b] = mass
    return tuple(v)


class TestClassifier:
    def make(self, threshold=0.35):
        return PhaseClassifier(
            similarity_threshold=threshold, stable_min_intervals=2
        )

    def test_first_vector_creates_phase(self):
        classifier = self.make()
        pid, is_new, run = classifier.classify(vec(0))
        assert is_new and pid == 0 and run == 1

    def test_same_vector_recurs(self):
        classifier = self.make()
        classifier.classify(vec(0))
        pid, is_new, run = classifier.classify(vec(0))
        assert not is_new and pid == 0 and run == 2

    def test_distinct_vector_new_phase(self):
        classifier = self.make()
        classifier.classify(vec(0))
        pid, is_new, _ = classifier.classify(vec(5))
        assert is_new and pid == 1

    def test_recurring_phase_recognised_after_gap(self):
        classifier = self.make()
        a, _, _ = classifier.classify(vec(0))
        classifier.classify(vec(5))
        pid, is_new, run = classifier.classify(vec(0))
        assert pid == a and not is_new and run == 1

    def test_stability_accounting(self):
        classifier = self.make()
        for v in (vec(0), vec(0), vec(0), vec(5), vec(0), vec(0)):
            classifier.classify(v)
        classifier.flush()
        stats = classifier.occurrence_stats
        assert stats.stable_intervals == 5       # runs of 3 and 2
        assert stats.transitional_intervals == 1  # the lone vec(5)
        assert stats.occurrences == 3
        assert stats.stable_occurrences == 2
        assert stats.stable_fraction == pytest.approx(5 / 6)

    def test_signature_ewma_tracks_drift(self):
        classifier = self.make(threshold=0.6)
        classifier.classify(vec(0))
        # Slowly mix in bucket 1; EWMA keeps it the same phase.
        for weight in (200, 400, 600):
            v = list(vec(0))
            v[1] = weight
            pid, is_new, _ = classifier.classify(tuple(v))
            assert not is_new

    def test_interval_ipc_covs(self):
        classifier = self.make()
        pid0, _, _ = classifier.classify(vec(0))
        classifier.note_interval_ipc(pid0, 2.0)
        classifier.classify(vec(0))
        classifier.note_interval_ipc(pid0, 2.2)
        pid1, _, _ = classifier.classify(vec(5))
        classifier.note_interval_ipc(pid1, 1.0)
        classifier.classify(vec(5))
        classifier.note_interval_ipc(pid1, 1.1)
        assert classifier.per_phase_ipc_cov() > 0
        assert classifier.inter_phase_ipc_cov() > (
            classifier.per_phase_ipc_cov()
        )

    def test_flush_idempotent(self):
        classifier = self.make()
        classifier.classify(vec(0))
        classifier.flush()
        before = classifier.occurrence_stats.occurrences
        classifier.flush()
        assert classifier.occurrence_stats.occurrences == before

    def test_validation(self):
        with pytest.raises(ValueError):
            PhaseClassifier(similarity_threshold=0)
        with pytest.raises(ValueError):
            PhaseClassifier(stable_min_intervals=0)
