"""Tests for the post-run analysis reports."""

import pytest

from repro.report.analysis import (
    hotspot_report,
    phase_report,
    render_hotspot_report,
    render_phase_report,
)
from repro.sim.config import ExperimentConfig
from repro.sim.driver import make_policy, run_benchmark
from repro.workloads.specjvm import build_benchmark


@pytest.fixture(scope="module")
def hotspot_run():
    config = ExperimentConfig(max_instructions=500_000)
    policy = make_policy("hotspot", config)
    result = run_benchmark(
        build_benchmark("db"), "hotspot", config, policy=policy
    )
    return policy, result


@pytest.fixture(scope="module")
def bbv_run():
    config = ExperimentConfig(max_instructions=500_000)
    policy = make_policy("bbv", config)
    run_benchmark(build_benchmark("db"), "bbv", config, policy=policy)
    return policy


class TestHotspotReport:
    def test_rows_cover_all_hotspots(self, hotspot_run):
        policy, result = hotspot_run
        rows = hotspot_report(policy, result)
        names = {r.name for r in rows}
        assert set(policy.states) <= names
        assert set(policy.unmanaged) <= names

    def test_managed_rows_sorted_first_by_size(self, hotspot_run):
        policy, result = hotspot_run
        rows = hotspot_report(policy, result)
        managed = [r for r in rows if r.managed]
        assert managed == sorted(
            managed, key=lambda r: -r.mean_size
        )
        first_unmanaged = next(
            (i for i, r in enumerate(rows) if not r.managed), len(rows)
        )
        assert all(r.managed for r in rows[:first_unmanaged])

    def test_chosen_settings_humanised(self, hotspot_run):
        policy, result = hotspot_run
        rows = hotspot_report(policy, result)
        tuned = [r for r in rows if r.best_settings]
        assert tuned
        for r in tuned:
            for setting in r.best_settings:
                assert "KB" in setting or "entry" in setting

    def test_render(self, hotspot_run):
        policy, result = hotspot_run
        text = render_hotspot_report(policy, result)
        assert "Per-hotspot adaptation report" in text
        assert "driver0" in text

    def test_report_without_run_result(self, hotspot_run):
        policy, _ = hotspot_run
        rows = hotspot_report(policy)
        assert rows
        assert all(r.invocations == 0 for r in rows)


class TestPhaseReport:
    def test_rows_cover_all_phases(self, bbv_run):
        rows = phase_report(bbv_run)
        assert len(rows) == bbv_run.classifier.n_phases
        assert rows == sorted(rows, key=lambda r: -r.intervals)

    def test_tuned_flags_consistent(self, bbv_run):
        rows = phase_report(bbv_run)
        tuned_pids = {
            pid for pid, e in bbv_run.entries.items() if e.tuned
        }
        assert {r.pid for r in rows if r.tuned} == tuned_pids

    def test_render(self, bbv_run):
        text = render_phase_report(bbv_run)
        assert "Per-phase adaptation report" in text
        assert "intervals" in text
