"""Statistical-equivalence harness: turbo kernel vs fast kernel.

The turbo kernel (``sim_kernel="turbo"``) trades bit-identity for
throughput: whole-interval batched cache simulation over numpy draw
tables, relaxed intra-set LRU for hit-only lines, and re-associated
float accumulation.  It is therefore *banned* from the exact harness
(``tests/equivalence.py``) and the golden-trace suite, and earns its
keep against this two-level contract instead:

**Discrete tuning outcomes are compared exactly, on every cell.**
Chosen configurations, pin decisions, trial kinds, phase transitions,
hotspot sets, and reconfiguration counts must be *equal* to the fast
kernel's — a tolerance on a decision is meaningless.  Turbo achieves
this by construction: control flow draws from the split decider stream
(``decider_stream="split"``, which ``sim_kernel="turbo"`` auto-selects),
and any policy that tunes by measuring raises
``AdaptationHooks.bulk_pause_depth``, which deoptimises turbo onto its
bit-identical scalar path for the whole run.

**Continuous metrics are compared under committed tolerances** — but
only where batching is actually live.  Under measuring policies (bbv,
hotspot schemes) turbo is fully deoptimised, so those cells assert
*exact* ``RunResult`` equality.  Baseline cells batch freely and are
gated by ``tests/tolerance_spec.json`` (per-metric relative budgets with
absolute floors; see that file for how the numbers were sized).

The comparator config is the *same* config: the fast run pins
``decider_stream="split"`` explicitly, because that is the stream the
turbo config resolves to.  (Fast with split deciders is itself proven
against the reference interpreter by the exact grid — the chain is
reference ≡ fast ≡(stat) turbo, each link tested where it lives.)

Every comparison lands in a :class:`tests.tolerances.DeviationReport`;
``STAT_EQUIV_REPORT=<path>`` makes the pytest suite write the rendered
JSON report there (the nightly workflow uploads it as an artifact).
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Dict, Optional, Tuple

from repro.core.policy import HotspotACEPolicy
from repro.phases.policy import BBVACEPolicy
from repro.sim.config import ExperimentConfig
from repro.sim.driver import SCHEMES, RunResult, run_benchmark
from repro.workloads.specjvm import BENCHMARK_NAMES

from tests.tolerances import (
    DeviationReport,
    describe_divergence,
    first_divergence,
)

SPEC_PATH = os.path.join(os.path.dirname(__file__), "tolerance_spec.json")

#: Schemes whose policies measure IPC/energy to tune: turbo must be
#: fully deoptimised there, so the harness demands exact equality.
MEASURING_SCHEMES = ("bbv", "hotspot")


def load_tolerance_spec(path: str = SPEC_PATH) -> Dict[str, Dict[str, float]]:
    """The committed per-metric tolerance table (metric → budgets)."""
    with open(path) as handle:
        spec = json.load(handle)
    return spec["metrics"]


def continuous_metrics(result: RunResult) -> Dict[str, float]:
    """The tolerance-gated metric projection of a run.

    Exactly the metrics named by ``tolerance_spec.json`` — adding a
    metric here without a spec entry fails the harness, which is the
    intended friction.
    """
    total = result.l1d_energy_nj + result.l2_energy_nj + result.memory_nj
    return {
        "instructions": float(result.instructions),
        "cycles": result.cycles,
        "ipc": result.ipc,
        "l1d_energy_nj": result.l1d_energy_nj,
        "l2_energy_nj": result.l2_energy_nj,
        "memory_nj": result.memory_nj,
        "total_energy_nj": total,
        "edp": total * result.cycles,
        "l1d_miss_rate": result.l1d_miss_rate,
        "l2_miss_rate": result.l2_miss_rate,
        "branch_mispredict_rate": result.branch_mispredict_rate,
    }


def _config_tree(config) -> object:
    """A tuning Config as a JSON-comparable tree."""
    if dataclasses.is_dataclass(config):
        return dataclasses.asdict(config)
    return config


def run_with_decisions(
    benchmark: str,
    scheme: str,
    kernel: str,
    max_instructions: int,
) -> Tuple[RunResult, Dict[str, object]]:
    """One cell under ``kernel``; returns (result, discrete outcomes).

    The discrete tree is everything a tolerance must never touch:
    hotspot sets, chosen configurations, per-kind trial counts, phase
    assignments, and reconfiguration traffic.
    """
    config = ExperimentConfig(
        max_instructions=max_instructions,
        sim_kernel=kernel,
        # Turbo auto-selects the split decider stream; pin the same
        # stream for the comparator so both kernels replay identical
        # control flow (see module docstring).
        decider_stream="split",
    )
    policy: Optional[object] = None
    if scheme == "hotspot":
        policy = HotspotACEPolicy(tuning=config.tuning)
    elif scheme == "bbv":
        policy = BBVACEPolicy(bbv=config.bbv, tuning=config.tuning)
    result = run_benchmark(benchmark, scheme, config=config, policy=policy)

    discrete: Dict[str, object] = {
        "hotspots": sorted(result.hotspot_summaries),
        "n_hotspots": result.n_hotspots,
        "applied_reconfigurations": dict(result.applied_reconfigurations),
        "denied_reconfigurations": dict(result.denied_reconfigurations),
        "gc_invocations": result.gc_invocations,
    }
    if scheme == "hotspot":
        assert isinstance(policy, HotspotACEPolicy)
        discrete["chosen_configs"] = {
            name: _config_tree(cfg)
            for name, cfg in sorted(policy.chosen_configs().items())
        }
        stats = policy.final_stats
        discrete["kind_of"] = dict(sorted(stats.kind_of.items()))
        discrete["tunings"] = stats.tunings
        discrete["retunes"] = stats.retunes
    elif scheme == "bbv":
        assert isinstance(policy, BBVACEPolicy)
        discrete["phase_best"] = {
            str(phase_id): _config_tree(
                entry.best.config if entry.best else None
            )
            for phase_id, entry in sorted(policy.entries.items())
        }
        discrete["n_phases"] = policy.final_stats.n_phases
    return result, discrete


def assert_cell_stat_equivalent(
    benchmark: str,
    scheme: str,
    max_instructions: int = 400_000,
    report: Optional[DeviationReport] = None,
    spec: Optional[Dict[str, Dict[str, float]]] = None,
) -> None:
    """The full two-level contract for one cell (see module docstring).

    Raises ``AssertionError`` naming the first diverging decision path
    or the exceeded metric; metric comparisons are recorded into
    ``report`` either way.
    """
    spec = spec if spec is not None else load_tolerance_spec()
    report = report if report is not None else DeviationReport()
    cell = f"{benchmark}/{scheme}@{max_instructions}"

    fast_result, fast_decisions = run_with_decisions(
        benchmark, scheme, "fast", max_instructions
    )
    turbo_result, turbo_decisions = run_with_decisions(
        benchmark, scheme, "turbo", max_instructions
    )

    # Level 1 — discrete tuning outcomes: exact, no tolerance, always.
    hit = first_divergence(fast_decisions, turbo_decisions)
    if hit is not None:
        raise AssertionError(
            describe_divergence(cell, "tuning decisions", hit)
        )

    # Level 2a — measuring policies force full deoptimisation, so the
    # whole RunResult must be bit-identical, not merely within budget.
    if scheme in MEASURING_SCHEMES:
        fast_tree = json.loads(json.dumps(fast_result.to_dict()))
        turbo_tree = json.loads(json.dumps(turbo_result.to_dict()))
        hit = first_divergence(fast_tree, turbo_tree)
        if hit is not None:
            raise AssertionError(
                describe_divergence(
                    cell, "RunResult (deoptimised turbo)", hit
                )
            )
        # Still record the headline metrics (at zero deviation) so the
        # report shows the full grid, not just the batched cells.
        fast_metrics = continuous_metrics(fast_result)
        for metric, baseline in fast_metrics.items():
            budgets = spec[metric]
            report.record(
                cell, metric, baseline, baseline,
                budgets["rel_tol"], budgets["abs_tol"],
            )
        return

    # Level 2b — batching is live: every committed metric within budget.
    fast_metrics = continuous_metrics(fast_result)
    turbo_metrics = continuous_metrics(turbo_result)
    missing = set(fast_metrics) - set(spec)
    assert not missing, f"metrics without a tolerance spec entry: {missing}"
    exceeded = []
    for metric, baseline in fast_metrics.items():
        budgets = spec[metric]
        deviation = report.record(
            cell, metric, baseline, turbo_metrics[metric],
            budgets["rel_tol"], budgets["abs_tol"],
        )
        if not deviation.ok:
            exceeded.append(deviation)
    if exceeded:
        raise AssertionError(
            f"{cell}: {len(exceeded)} metric(s) out of tolerance\n"
            + "\n".join("  " + d.describe() for d in exceeded)
        )


def grid_cells():
    """Every (benchmark, scheme) cell of the full equivalence grid."""
    return [
        (benchmark, scheme)
        for benchmark in BENCHMARK_NAMES
        for scheme in SCHEMES
    ]


def write_report_if_requested(report: DeviationReport) -> Optional[str]:
    """Write the JSON deviation report to ``$STAT_EQUIV_REPORT`` if set."""
    path = os.environ.get("STAT_EQUIV_REPORT")
    if not path:
        return None
    payload = report.to_json()
    payload["rendered"] = report.render(n=20)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
    return path
