"""Unit tests for the resizable cache model."""

import pytest

from repro.uarch.cache import Cache

KB = 1024


def make_cache(size=8 * KB, sizes=None):
    return Cache(
        "L1D", size, line_size=64, associativity=2,
        sizes=sizes or (8 * KB, 4 * KB, 2 * KB, 1 * KB),
    )


class TestGeometry:
    def test_set_count(self):
        cache = make_cache(8 * KB)
        assert cache.n_sets == 8 * KB // (64 * 2)
        assert cache.n_lines == cache.n_sets * 2

    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(ValueError):
            Cache("c", 1024, line_size=96, associativity=2)

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            Cache("c", 1024, line_size=64, associativity=2,
                  sizes=(1024, 768))

    def test_rejects_size_not_in_list(self):
        with pytest.raises(ValueError):
            Cache("c", 512, line_size=64, associativity=2, sizes=(1024,))


class TestAccess:
    def test_cold_miss_then_hit(self):
        cache = make_cache()
        assert cache.access(0x1000) is False
        assert cache.access(0x1000) is True
        assert cache.access(0x1004) is True  # same line

    def test_distinct_lines_miss_separately(self):
        cache = make_cache()
        cache.access(0x1000)
        assert cache.access(0x1040) is False  # next 64B line

    def test_store_marks_dirty(self):
        cache = make_cache()
        cache.access(0x1000, is_store=True)
        assert cache.is_dirty(0x1000)
        cache.access(0x2000)
        assert not cache.is_dirty(0x2000)

    def test_load_hit_preserves_dirty_bit(self):
        cache = make_cache()
        cache.access(0x1000, is_store=True)
        cache.access(0x1000)  # load hit must not clear dirty
        assert cache.is_dirty(0x1000)

    def test_write_allocate(self):
        cache = make_cache()
        result = cache.access_many((), (0x3000,))
        assert result.write_misses == 1
        assert cache.contains(0x3000)

    def test_lru_eviction_order(self):
        cache = make_cache()
        n_sets = cache.n_sets
        # Three lines mapping to the same set of a 2-way cache.
        a, b, c = (0x10000 + i * n_sets * 64 for i in range(3))
        cache.access(a)
        cache.access(b)
        cache.access(a)  # touch a: b becomes LRU
        cache.access(c)  # evicts b
        assert cache.contains(a)
        assert not cache.contains(b)
        assert cache.contains(c)

    def test_dirty_eviction_produces_writeback(self):
        cache = make_cache()
        n_sets = cache.n_sets
        a, b, c = (0x10000 + i * n_sets * 64 for i in range(3))
        cache.access(a, is_store=True)
        cache.access(b)
        result = cache.access_many((c,), ())
        assert result.writeback_lines == [a & ~63]

    def test_access_many_counts(self):
        cache = make_cache()
        loads = [0x1000, 0x1040, 0x1000]
        stores = [0x2000]
        result = cache.access_many(loads, stores)
        assert result.read_hits == 1
        assert result.read_misses == 2
        assert result.write_misses == 1
        assert result.accesses == 4
        assert len(result.miss_lines) == 3

    def test_stats_accumulate(self):
        cache = make_cache()
        cache.access_many([0x1000] * 5, [0x1000])
        stats = cache.stats
        assert stats.read_accesses == 5
        assert stats.read_misses == 1
        assert stats.write_accesses == 1
        assert stats.miss_rate == pytest.approx(1 / 6)


class TestFlush:
    def test_flush_returns_dirty_lines(self):
        cache = make_cache()
        cache.access(0x1000, is_store=True)
        cache.access(0x2000)
        dirty = cache.flush()
        assert dirty == [0x1000 & ~63]
        assert cache.resident_lines == 0

    def test_flush_counts_stats(self):
        cache = make_cache()
        cache.access(0x1000, is_store=True)
        cache.flush()
        assert cache.stats.flushes == 1
        assert cache.stats.flushed_dirty_lines == 1


class TestResize:
    def test_resize_to_same_size_is_noop(self):
        cache = make_cache()
        cache.access(0x1000)
        assert cache.resize(8 * KB) == []
        assert cache.contains(0x1000)

    def test_shrink_keeps_surviving_sets(self):
        cache = make_cache(8 * KB)
        # Line in set 0 survives a shrink; set index stays 0.
        cache.access(0x0)
        cache.resize(1 * KB)
        assert cache.size == 1 * KB
        assert cache.contains(0x0)

    def test_shrink_flushes_disabled_sets(self):
        cache = make_cache(8 * KB)
        new_sets = 1 * KB // (64 * 2)
        # Address mapping to a set beyond the shrunk range.
        addr = new_sets * 64  # set index == new_sets under old geometry
        cache.access(addr, is_store=True)
        dirty = cache.resize(1 * KB)
        assert dirty == [addr & ~63]
        assert not cache.contains(addr)

    def test_grow_keeps_lines_with_matching_index(self):
        cache = make_cache(1 * KB, sizes=(8 * KB, 1 * KB))
        cache.access(0x0)  # line 0: index 0 under any mask
        cache.resize(8 * KB)
        assert cache.contains(0x0)

    def test_grow_drops_lines_whose_index_widens(self):
        cache = make_cache(1 * KB, sizes=(8 * KB, 1 * KB))
        small_sets = cache.n_sets
        # This line maps to set 0 in the small cache but to a different
        # set once the mask widens.
        addr = small_sets * 64
        cache.access(addr, is_store=True)
        dirty = cache.resize(8 * KB)
        assert (addr & ~63) in dirty
        assert not cache.contains(addr)

    def test_no_stale_reachability_after_any_resize(self):
        cache = make_cache(8 * KB)
        addrs = [i * 64 for i in range(256)]
        cache.access_many(addrs, ())
        for size in (2 * KB, 8 * KB, 1 * KB, 4 * KB):
            cache.resize(size)
            # Every resident line must be found where lookups search it.
            for addr in addrs:
                if cache.contains(addr):
                    assert cache.access(addr) is True

    def test_capacity_respected_after_shrink(self):
        cache = make_cache(8 * KB)
        cache.access_many([i * 64 for i in range(200)], ())
        cache.resize(1 * KB)
        assert cache.resident_lines <= cache.n_lines

    def test_resize_to_unknown_size_rejected(self):
        cache = make_cache()
        with pytest.raises(ValueError):
            cache.resize(3 * KB)
