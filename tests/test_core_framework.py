"""Tests for the high-level ACEFramework facade and the predictor."""

import pytest

from repro.core.framework import ACEFramework, ACEReport
from repro.core.prediction import FootprintPredictor
from repro.core.policy import HotspotPolicyStats
from tests.conftest import make_loop_program, make_two_tier_program


class TestACEFramework:
    def test_run_produces_report(self):
        framework = ACEFramework()
        report = framework.run(
            make_loop_program(trips=30, span=256),
            max_instructions=300_000,
        )
        assert isinstance(report, ACEReport)
        assert report.instructions >= 300_000
        assert report.hotspots_detected >= 1
        assert isinstance(report.policy_stats, HotspotPolicyStats)

    def test_energy_reduction_positive_for_small_ws(self):
        framework = ACEFramework()
        report = framework.run(
            make_loop_program(trips=30, span=256),
            max_instructions=500_000,
        )
        assert report.l1d_energy_reduction > 0.10

    def test_summary_renders(self):
        framework = ACEFramework()
        report = framework.run(
            make_loop_program(trips=30), max_instructions=200_000
        )
        text = report.summary()
        assert "L1D energy" in text and "slowdown" in text

    def test_describe_configuration(self):
        framework = ACEFramework(use_prediction=True, decoupling=False)
        info = framework.describe()
        assert info["prediction"] is True
        assert info["decoupling"] is False
        assert info["l1d_hotspot_band"] == (500, 5000)

    def test_prediction_mode_runs(self):
        framework = ACEFramework(use_prediction=True)
        report = framework.run(
            make_two_tier_program(), max_instructions=300_000
        )
        assert report.hotspots_detected >= 1

    def test_slowdown_is_cpi_based(self):
        framework = ACEFramework()
        report = framework.run(
            make_loop_program(trips=30), max_instructions=200_000
        )
        adaptive_cpi = report.adaptive_cycles / report.instructions
        baseline_cpi = (
            report.baseline_cycles / report.baseline_instructions
        )
        assert report.slowdown == pytest.approx(
            adaptive_cpi / baseline_cpi - 1.0
        )


class TestFootprintPredictor:
    def test_analysed_footprint_includes_callees(self):
        program = make_two_tier_program()
        predictor = FootprintPredictor(callee_depth=1)
        driver = program.methods["driver"]
        footprint = predictor.analysed_footprint(driver, program)
        assert footprint >= 12 * 1024  # the driver's own span

    def test_zero_depth_ignores_callees(self):
        program = make_two_tier_program()
        predictor = FootprintPredictor(callee_depth=0)
        main = program.methods["main"]
        assert predictor.analysed_footprint(main, program) == 0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            FootprintPredictor(headroom=0.5)
        with pytest.raises(ValueError):
            FootprintPredictor(callee_depth=-1)

    def test_predict_without_program_returns_none(self):
        from repro.sim.config import MachineConfig, build_machine
        from repro.vm.hotspot import HotspotInfo, MethodProfile

        machine = build_machine(MachineConfig())
        profile = MethodProfile("work")
        profile.record_completion(1000)
        hotspot = HotspotInfo(profile, 0)
        predictor = FootprintPredictor()
        assert predictor.predict(hotspot, ("L1D",), machine) is None

    def test_predict_selects_smallest_fitting(self):
        from repro.core.prediction import install_program_for_prediction
        from repro.sim.config import MachineConfig, build_machine
        from repro.vm.hotspot import HotspotInfo, MethodProfile

        program = make_loop_program(span=256)
        machine = build_machine(MachineConfig())
        install_program_for_prediction(machine, program)
        profile = MethodProfile("work")
        profile.record_completion(1000)
        hotspot = HotspotInfo(profile, 0)
        predictor = FootprintPredictor(headroom=1.5)
        prediction = predictor.predict(hotspot, ("L1D",), machine)
        # 256 * 1.5 = 384B fits even the 1 KB setting (index 3).
        assert prediction == (3,)
