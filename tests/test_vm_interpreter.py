"""Interpreter/VM execution tests: control flow, calls, hooks, threads."""

import pytest

from repro.isa.builder import ProgramBuilder
from repro.sim.config import MachineConfig, build_machine
from repro.vm.vm import AdaptationHooks, VMConfig, VirtualMachine
from repro.workloads.patterns import StridedBehavior
from tests.conftest import make_loop_program, make_two_tier_program


def run_vm(program, policy=None, max_instructions=50_000,
           config=None, thread_entries=None):
    machine = build_machine(MachineConfig())
    vm = VirtualMachine(
        program, machine,
        policy=policy,
        config=config or VMConfig(hot_threshold=3),
        thread_entries=thread_entries,
    )
    vm.run(max_instructions)
    return vm


class RecordingPolicy(AdaptationHooks):
    name = "recording"

    def __init__(self):
        self.blocks = []
        self.detected = []

    def on_block(self, event, machine):
        self.blocks.append(event)

    def on_hotspot_detected(self, hotspot, vm):
        self.detected.append(hotspot.name)


class TestExecutionBasics:
    def test_instruction_budget_respected(self):
        vm = run_vm(make_loop_program(), max_instructions=20_000)
        # Budget may overshoot by at most a quantum of blocks.
        assert 20_000 <= vm.machine.instructions < 25_000

    def test_finite_program_terminates(self):
        program = make_loop_program(outer_trips=3)
        vm = run_vm(program, max_instructions=10_000_000)
        assert vm.threads[0].finished
        # 3 outer iterations -> exactly 3 invocations of work.
        assert vm.database.profile("work").invocations == 3

    def test_loop_trip_counts_honoured(self):
        program = make_loop_program(trips=7, outer_trips=2)
        policy = RecordingPolicy()
        vm = run_vm(program, policy, max_instructions=10_000_000)
        loop_blocks = [
            e for e in policy.blocks
            if e.method == "work" and e.bid == "loop"
        ]
        assert len(loop_blocks) == 7 * 2

    def test_branch_events_have_pcs(self):
        policy = RecordingPolicy()
        run_vm(make_loop_program(), policy, max_instructions=5_000)
        conditionals = [e for e in policy.blocks if e.branch_pc is not None]
        assert conditionals
        assert all(e.block_pc for e in policy.blocks)

    def test_run_is_deterministic(self):
        results = []
        for _ in range(2):
            vm = run_vm(make_loop_program(), max_instructions=30_000)
            results.append(
                (vm.machine.instructions, vm.machine.cycles,
                 vm.machine.energy.l1d.total_nj)
            )
        assert results[0] == results[1]

    def test_different_seeds_produce_different_addresses(self):
        streams = []
        for seed in (1, 2):
            policy = RecordingPolicy()
            run_vm(
                make_loop_program(), policy, max_instructions=5_000,
                config=VMConfig(seed=seed),
            )
            streams.append(
                [tuple(e.loads) for e in policy.blocks if e.loads][:20]
            )
        assert streams[0] != streams[1]

    def test_requires_laid_out_program(self):
        from repro.isa.program import Program
        from tests.test_isa_program import simple_method

        raw = Program([simple_method("m")], "m")  # not validated()
        machine = build_machine(MachineConfig())
        with pytest.raises(ValueError):
            VirtualMachine(raw, machine)

    def test_rejects_unknown_thread_entry(self):
        machine = build_machine(MachineConfig())
        with pytest.raises(ValueError):
            VirtualMachine(
                make_loop_program(), machine, thread_entries=["ghost"]
            )

    def test_rejects_bad_budget(self):
        vm = run_vm(make_loop_program(), max_instructions=1_000)
        with pytest.raises(ValueError):
            vm.run(0)


class TestDOServices:
    def test_hotspot_detection_fires(self):
        policy = RecordingPolicy()
        vm = run_vm(make_loop_program(), policy, max_instructions=50_000)
        assert "work" in policy.detected
        assert "work" in vm.hotspots
        # main is invoked once and never turns hot.
        assert "main" not in vm.hotspots

    def test_methods_baseline_compiled_on_first_touch(self):
        vm = run_vm(make_loop_program(), max_instructions=10_000)
        assert "work" in vm.jit.levels
        assert "main" in vm.jit.levels

    def test_hotspots_recompiled(self):
        vm = run_vm(make_loop_program(), max_instructions=50_000)
        from repro.vm.jit import OptimizationLevel

        assert vm.jit.level_of("work") == OptimizationLevel.O2

    def test_entry_exit_stubs_invoked(self):
        calls = {"entry": 0, "exit": 0}

        class StubPolicy(AdaptationHooks):
            def on_hotspot_detected(self, hotspot, vm):
                from repro.vm.jit import EntryStub

                vm.jit.patch_entry(
                    hotspot.name,
                    EntryStub("t", lambda *a: calls.__setitem__(
                        "entry", calls["entry"] + 1)),
                )
                vm.jit.patch_exit(
                    hotspot.name,
                    EntryStub("p", lambda *a: calls.__setitem__(
                        "exit", calls["exit"] + 1)),
                )

        run_vm(make_loop_program(), StubPolicy(), max_instructions=60_000)
        assert calls["entry"] > 0
        assert abs(calls["entry"] - calls["exit"]) <= 1  # one in flight

    def test_inclusive_size_measured(self):
        vm = run_vm(make_two_tier_program(), max_instructions=120_000)
        mid = vm.database.profile("mid")
        driver = vm.database.profile("driver")
        assert mid.completed_invocations > 0
        assert driver.mean_size > mid.mean_size  # inclusive nesting

    def test_hotspot_coverage_counted(self):
        vm = run_vm(make_loop_program(), max_instructions=100_000)
        assert vm.stats.instructions_in_hotspots > 0
        assert (
            vm.stats.instructions_in_hotspots
            <= vm.machine.instructions
        )

    def test_sampler_attributes_samples(self):
        vm = run_vm(make_loop_program(), max_instructions=100_000)
        assert vm.sampler.total_samples > 0
        assert "work" in vm.sampler.samples


class TestThreads:
    def test_two_threads_interleave(self):
        program = make_loop_program()
        policy = RecordingPolicy()
        vm = run_vm(
            program, policy, max_instructions=120_000,
            config=VMConfig(hot_threshold=3, quantum_blocks=50),
            thread_entries=["main", "main"],
        )
        tids = {e.thread_id for e in policy.blocks}
        assert tids == {0, 1}
        assert vm.stats.thread_instructions[0] > 0
        assert vm.stats.thread_instructions[1] > 0

    def test_threads_have_independent_streams(self):
        program = make_loop_program()
        vm = run_vm(
            program, max_instructions=60_000,
            thread_entries=["main", "main"],
            config=VMConfig(quantum_blocks=50),
        )
        # Both threads invoke work; invocation counts roughly double the
        # single-thread case for the same budget split between them.
        assert vm.database.profile("work").invocations > 2


class TestGCService:
    def test_gc_invoked_periodically(self):
        builder = ProgramBuilder(entry="main")
        gc = builder.method("gc_sweep")
        gc.region(0x6000_0000, 4096)
        gc.loop(
            "l", 20, 10, "x", loads=4,
            memory=StridedBehavior(4096, stride=128),
        )
        gc.ret("x")
        gc.done()
        work = builder.method("work")
        work.loop("l", 30, 10, "x", loads=3)
        work.ret("x")
        work.done()
        main = builder.method("main")
        main.loop("top", 3, 10_000, "end", calls=["work"])
        main.ret("end")
        main.done()
        program = builder.build()

        vm = run_vm(
            program,
            max_instructions=100_000,
            config=VMConfig(
                hot_threshold=3,
                gc_method="gc_sweep",
                gc_period_instructions=20_000,
            ),
        )
        assert vm.stats.gc_invocations >= 3
        assert vm.database.profile("gc_sweep").invocations >= 3
