"""Telemetry subsystem tests: registry, event log, emit points, export.

The end-to-end fixtures run one short hotspot-scheme cell (and one BBV
cell) with a live :class:`repro.obs.Telemetry` and assert the paper's
decision lifecycle — detect → tune → try → pin — appears as ordered,
typed events; the null-sink tests pin the overhead contract (disabled
telemetry records nothing and leaves results untouched).
"""

import json

import pytest

from repro.obs import (
    CONFIG_PINNED,
    CONFIG_TRIED,
    EVENT_TYPES,
    Event,
    EventLog,
    HOTSPOT_DETECTED,
    MetricsRegistry,
    NULL_TELEMETRY,
    NullMetricsRegistry,
    PHASE_TRANSITION,
    TUNING_STARTED,
    Telemetry,
    WALL_CLOCK_EVENTS,
    chrome_trace,
    summary_markdown,
    timeline_markdown,
    write_chrome_trace,
    write_jsonl,
)
from repro.sim.config import ExperimentConfig
from repro.sim.driver import RunSpec, execute
from repro.sim.engine import Engine


def short_config(instructions=400_000) -> ExperimentConfig:
    config = ExperimentConfig()
    config.max_instructions = instructions
    return config


@pytest.fixture(scope="module")
def traced_hotspot_run():
    """One short hotspot-scheme run with live telemetry."""
    telemetry = Telemetry()
    result = execute(
        RunSpec("db", "hotspot", short_config()), telemetry=telemetry
    )
    return telemetry, result


@pytest.fixture(scope="module")
def traced_bbv_run():
    telemetry = Telemetry()
    result = execute(
        RunSpec("db", "bbv", short_config()), telemetry=telemetry
    )
    return telemetry, result


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------


class TestMetricsRegistry:
    def test_counter_created_on_first_use(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.counter("a").inc(2)
        assert registry.counter("a").value == 3
        assert registry.names() == ["a"]

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("a").inc(-1)

    def test_gauge(self):
        registry = MetricsRegistry()
        registry.gauge("setting").set(4)
        registry.gauge("setting").set(2)
        assert registry.gauge("setting").value == 2

    def test_histogram_statistics(self):
        histogram = MetricsRegistry().histogram("h", buckets=(10, 100))
        for value in (5, 50, 500):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.min == 5 and histogram.max == 500
        assert histogram.mean == pytest.approx(555 / 3)
        assert histogram.to_dict()["buckets"] == {
            "le_10": 1, "le_100": 1, "inf": 1,
        }

    def test_kind_collision_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_null_registry_records_nothing(self):
        registry = NullMetricsRegistry()
        registry.counter("a").inc()
        registry.gauge("b").set(1)
        registry.histogram("c").observe(2)
        assert len(registry) == 0
        assert registry.to_dict() == {}


# ---------------------------------------------------------------------------
# Event log
# ---------------------------------------------------------------------------


class TestEventLog:
    def test_bounded_appends_count_dropped(self):
        log = EventLog(max_events=2)
        for i in range(5):
            log.append(Event("hotspot_invoke", float(i), "vm"))
        assert len(log) == 2
        assert log.dropped == 3

    def test_counts_follow_vocabulary_order(self):
        log = EventLog()
        log.append(Event(CONFIG_TRIED, 2.0, "policy"))
        log.append(Event(HOTSPOT_DETECTED, 1.0, "vm"))
        log.append(Event(CONFIG_TRIED, 3.0, "policy"))
        assert list(log.counts()) == [HOTSPOT_DETECTED, CONFIG_TRIED]
        assert log.counts()[CONFIG_TRIED] == 2

    def test_wall_clock_partition(self):
        assert WALL_CLOCK_EVENTS < set(EVENT_TYPES)
        assert HOTSPOT_DETECTED not in WALL_CLOCK_EVENTS
        assert Event("cell_done", 1.0, "engine").wall_clock
        assert not Event(CONFIG_PINNED, 1.0, "policy").wall_clock


# ---------------------------------------------------------------------------
# The tuning lifecycle, end to end (acceptance criteria)
# ---------------------------------------------------------------------------


class TestHotspotTimeline:
    def test_lifecycle_event_minimums(self, traced_hotspot_run):
        telemetry, _ = traced_hotspot_run
        counts = telemetry.log.counts()
        assert counts.get(HOTSPOT_DETECTED, 0) >= 1
        assert counts.get(CONFIG_TRIED, 0) >= 4
        assert counts.get(CONFIG_PINNED, 0) >= 1

    def test_exactly_one_pin_per_tuned_hotspot(self, traced_hotspot_run):
        telemetry, _ = traced_hotspot_run
        pins = {}
        for event in telemetry.log.by_name(CONFIG_PINNED):
            hotspot = event.args["hotspot"]
            pins[hotspot] = pins.get(hotspot, 0) + 1
        assert pins, "no configurations were pinned"
        assert all(n == 1 for n in pins.values()), pins

    def test_lifecycle_order_per_hotspot(self, traced_hotspot_run):
        telemetry, _ = traced_hotspot_run
        for event in telemetry.log.by_name(CONFIG_PINNED):
            name = event.args["hotspot"]
            detected = [
                e.ts
                for e in telemetry.log.by_name(HOTSPOT_DETECTED)
                if e.args["method"] == name
            ]
            started = [
                e.ts
                for e in telemetry.log.by_name(TUNING_STARTED)
                if e.args["hotspot"] == name
            ]
            tried = [
                e.ts
                for e in telemetry.log.by_name(CONFIG_TRIED)
                if e.args["hotspot"] == name
            ]
            assert detected and started and tried
            assert detected[0] <= started[0] <= tried[0] <= event.ts
            assert tried == sorted(tried)

    def test_simulation_events_are_timestamp_ordered(
        self, traced_hotspot_run
    ):
        telemetry, _ = traced_hotspot_run
        lifecycle = (
            HOTSPOT_DETECTED, TUNING_STARTED, CONFIG_TRIED, CONFIG_PINNED,
        )
        stamps = [
            e.ts for e in telemetry.log if e.name in lifecycle
        ]
        assert stamps == sorted(stamps)

    def test_result_matches_untraced_run(self, traced_hotspot_run):
        _, traced = traced_hotspot_run
        untraced = execute(RunSpec("db", "hotspot", short_config()))
        assert traced.to_dict() == untraced.to_dict()


class TestBBVTimeline:
    def test_phase_transitions_recorded(self, traced_bbv_run):
        telemetry, result = traced_bbv_run
        transitions = telemetry.log.by_name(PHASE_TRANSITION)
        assert transitions, "BBV run produced no phase transitions"
        for event in transitions:
            assert event.args["phase_from"] != event.args["phase_to"]
        assert result.bbv_stats is not None


# ---------------------------------------------------------------------------
# The overhead contract: disabled telemetry is a true no-op
# ---------------------------------------------------------------------------


class TestNullSink:
    def test_null_sink_records_nothing(self):
        execute(RunSpec("db", "hotspot", short_config(200_000)))
        assert len(NULL_TELEMETRY.log) == 0
        assert NULL_TELEMETRY.log.dropped == 0
        assert len(NULL_TELEMETRY.metrics) == 0

    def test_result_shape_is_telemetry_free(self, traced_hotspot_run):
        _, traced = traced_hotspot_run
        untraced = execute(RunSpec("db", "hotspot", short_config()))
        assert set(traced.to_dict()) == set(untraced.to_dict())
        assert not any("telemetry" in k for k in traced.to_dict())
        assert not hasattr(traced, "telemetry")

    def test_null_emit_paths_are_noops(self):
        NULL_TELEMETRY.emit("hotspot_detected", 1.0, "vm", method="m")
        NULL_TELEMETRY.emit_wall("cell_done", dur=1.0)
        NULL_TELEMETRY.metrics.counter("x").inc()
        assert NULL_TELEMETRY.now_us() == 0.0
        assert len(NULL_TELEMETRY.log) == 0
        assert not NULL_TELEMETRY.enabled


# ---------------------------------------------------------------------------
# Engine scheduling events
# ---------------------------------------------------------------------------


class TestEngineEvents:
    def test_serial_cell_events_and_memory_hit(self):
        telemetry = Telemetry()
        engine = Engine(
            jobs=1, store=None, memory_cache={}, telemetry=telemetry
        )
        spec = RunSpec("db", "baseline", short_config(200_000))
        engine.run_one(spec)
        counts = telemetry.log.counts()
        assert counts.get("cell_start") == 1
        assert counts.get("cell_done") == 1
        engine.run_one(spec)
        assert telemetry.log.counts().get("memory_hit") == 1
        assert telemetry.metrics.counter("engine.simulations").value == 1
        done = telemetry.log.by_name("cell_done")[0]
        assert done.wall_clock and done.dur > 0
        assert done.track == "worker:0"


# ---------------------------------------------------------------------------
# Exporters
# ---------------------------------------------------------------------------


class TestExport:
    def test_chrome_trace_structure(self, traced_hotspot_run):
        telemetry, _ = traced_hotspot_run
        trace = chrome_trace(telemetry)
        events = trace["traceEvents"]
        assert trace["otherData"]["dropped_events"] == 0
        metadata = [e for e in events if e["ph"] == "M"]
        body = [e for e in events if e["ph"] != "M"]
        assert body, "empty trace body"
        # One named thread per event-log track, plus the process names.
        named = {
            e["args"]["name"]
            for e in metadata
            if e["name"] == "thread_name"
        }
        assert named == set(telemetry.log.tracks())
        assert {"CU:L1D", "CU:L2", "policy", "vm"} <= named
        assert any(t.startswith("hotspot:") for t in named)
        # Simulated time and wall time live in different processes.
        pids = {e["pid"] for e in body}
        assert pids <= {1, 2}
        for event in body:
            assert event["ph"] in ("X", "i")
            if event["ph"] == "X":
                assert event["dur"] > 0
            else:
                assert event["s"] == "t"
        # Within a process the body is time-sorted (Perfetto-friendly).
        for pid in pids:
            stamps = [e["ts"] for e in body if e["pid"] == pid]
            assert stamps == sorted(stamps)

    def test_chrome_trace_round_trips_through_json(
        self, traced_hotspot_run, tmp_path
    ):
        telemetry, _ = traced_hotspot_run
        path = write_chrome_trace(telemetry, tmp_path / "trace.json")
        with open(path, encoding="utf-8") as handle:
            loaded = json.load(handle)
        assert loaded["displayTimeUnit"] == "ms"
        assert len(loaded["traceEvents"]) >= len(telemetry.log)

    def test_jsonl_export(self, traced_hotspot_run, tmp_path):
        telemetry, _ = traced_hotspot_run
        path = tmp_path / "events.jsonl"
        written = write_jsonl(telemetry, path)
        lines = path.read_text().splitlines()
        assert written == len(lines) == len(telemetry.log)
        first = json.loads(lines[0])
        assert {"name", "ts", "track"} <= set(first)

    def test_markdown_summaries(self, traced_hotspot_run):
        telemetry, _ = traced_hotspot_run
        timeline = timeline_markdown(telemetry)
        summary = summary_markdown(telemetry)
        assert "config_pinned" in timeline
        assert "hotspot_detected" in summary
        assert "policy.configs_pinned" in summary

    def test_timeline_exhibit(self, traced_hotspot_run):
        from repro.report.exhibits import timeline

        telemetry, _ = traced_hotspot_run
        exhibit = timeline(telemetry)
        assert exhibit.exhibit == "timeline"
        assert exhibit.data["counts"][CONFIG_PINNED] >= 1
        assert "config_pinned" in exhibit.rendered
