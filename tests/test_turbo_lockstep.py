"""Hypothesis lockstep: turbo's batched cache pass vs the scalar Cache.

``turbo_cache_batch`` (``repro.vm.turbovm``) replays a whole batch of
loop iterations against the same dict-LRU sets the scalar ``Cache``
uses.  Its contract, given the same access stream:

* read/write miss *counts* are exact;
* missed lines and dirty-victim writebacks are exact, in true stream
  order, split by the serialised flag of the slot that missed;
* final cache *contents* (resident lines and dirty bits) are exact;
* sets that took at least one miss also preserve exact LRU recency
  order (they are replayed scalar);
* the single licensed relaxation: recency order *within* a set whose
  batch lines were all resident at entry (hit-only sets) may differ —
  those lines are refreshed wholesale instead of per-access.

These tests drive both implementations from the same randomly generated
warm state and batch shape and check every clause, including the
wholesale-hit fast path (``bad is None``) that skips the scalar replay
entirely.
"""

from __future__ import annotations

import copy

import pytest

pytest.importorskip("numpy", reason="turbo kernel requires numpy")

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.uarch.cache import Cache
from repro.vm.turbovm import turbo_cache_batch

LINE = 16  # line size (bytes); shift = 4


def make_cache(n_sets: int, assoc: int) -> Cache:
    size = n_sets * assoc * LINE
    return Cache("lockstep", size, LINE, assoc, sizes=(size,))


def scalar_oracle(cache, flat_lines, store_row, serial_row, batch):
    """Replay the interleaved stream through the real scalar Cache.

    One ``access_many`` call per reference, in true stream order — the
    exact semantics turbo claims to preserve.  Returns the same shape as
    ``turbo_cache_batch``.
    """
    width = len(store_row)
    shift = cache._line_shift
    r_m = w_m = 0
    miss_normal, wb_normal, miss_serial, wb_serial = [], [], [], []
    for i, line in enumerate(flat_lines):
        addr = line << shift
        is_store = store_row[i % width]
        if is_store:
            result = cache.access_many([], [addr])
        else:
            result = cache.access_many([addr], [])
        r_m += result.read_misses
        w_m += result.write_misses
        target_miss, target_wb = (
            (miss_serial, wb_serial)
            if serial_row[i % width]
            else (miss_normal, wb_normal)
        )
        target_miss.extend(result.miss_lines)
        target_wb.extend(result.writeback_lines)
    return r_m, w_m, miss_normal, wb_normal, miss_serial, wb_serial


@st.composite
def batch_cases(draw):
    n_sets = draw(st.sampled_from([1, 2, 4, 8]))
    assoc = draw(st.sampled_from([1, 2, 4]))
    line_space = n_sets * assoc * 3  # enough lines to force conflicts
    warm = draw(
        st.lists(
            st.integers(0, line_space - 1), min_size=0, max_size=40
        )
    )
    width = draw(st.integers(1, 4))
    batch = draw(st.integers(1, 8))
    store_row = tuple(
        draw(st.lists(st.booleans(), min_size=width, max_size=width))
    )
    serial_row = tuple(
        draw(st.lists(st.booleans(), min_size=width, max_size=width))
    )
    flat_lines = draw(
        st.lists(
            st.integers(0, line_space - 1),
            min_size=width * batch,
            max_size=width * batch,
        )
    )
    return n_sets, assoc, warm, store_row, serial_row, flat_lines, batch


def run_lockstep(n_sets, assoc, warm, store_row, serial_row, flat_lines,
                 batch):
    cache = make_cache(n_sets, assoc)
    for line in warm:  # warm with alternating load/store traffic
        if line % 3 == 0:
            cache.access_many([], [line << cache._line_shift])
        else:
            cache.access_many([line << cache._line_shift], [])

    # Sets with a non-resident batch line at entry ("bad" sets) must be
    # replayed exactly; record them before either side mutates state.
    bad_sets = {
        line & cache._set_mask
        for line in set(flat_lines)
        if line not in cache._sets[line & cache._set_mask]
    }

    oracle_cache = copy.deepcopy(cache)
    width = len(store_row)
    store_lines = {
        line
        for i, line in enumerate(flat_lines)
        if store_row[i % width]
    }
    turbo = turbo_cache_batch(
        cache, flat_lines, store_lines, list(store_row), list(serial_row),
        batch,
    )
    oracle = scalar_oracle(
        oracle_cache, flat_lines, store_row, serial_row, batch
    )
    return cache, oracle_cache, bad_sets, turbo, oracle


@given(case=batch_cases())
@settings(max_examples=200, deadline=None)
def test_turbo_batch_matches_scalar_cache(case):
    cache, oracle_cache, bad_sets, turbo, oracle = run_lockstep(*case)

    # Miss counts and the stream-ordered miss / writeback address lists
    # (split by serialised slot) are exact.
    assert turbo[0] == oracle[0], "read miss count"
    assert turbo[1] == oracle[1], "write miss count"
    assert list(turbo[2]) == oracle[2], "normal-slot miss lines"
    assert list(turbo[3]) == oracle[3], "normal-slot writeback lines"
    assert list(turbo[4]) == oracle[4], "serial-slot miss lines"
    assert list(turbo[5]) == oracle[5], "serial-slot writeback lines"

    # Final contents: same resident lines with the same dirty bits in
    # every set (order-insensitive)...
    for index, (turbo_set, oracle_set) in enumerate(
        zip(cache._sets, oracle_cache._sets)
    ):
        assert dict(turbo_set) == dict(oracle_set), f"set {index} contents"
        # ...and sets that missed preserve exact LRU recency order too.
        if index in bad_sets:
            assert list(turbo_set.items()) == list(oracle_set.items()), (
                f"set {index} recency order (scalar-replayed set)"
            )


@given(case=batch_cases())
@settings(max_examples=100, deadline=None)
def test_hit_only_sets_only_relax_recency(case):
    """In hit-only sets the relaxation is *recency order only*: line
    membership and dirty bits still match the oracle exactly (checked
    above); here we additionally pin that no line was evicted from and
    no writeback was issued by a hit-only set."""
    cache, oracle_cache, bad_sets, turbo, oracle = run_lockstep(*case)
    set_mask = cache._set_mask
    shift = cache._line_shift
    for addr in list(turbo[2]) + list(turbo[3]) + list(turbo[4]) + list(turbo[5]):
        assert (addr >> shift) & set_mask in bad_sets


def test_wholesale_hit_path_refreshes_and_marks_dirty():
    """The fast path (every batch line resident) reports zero misses and
    OR-s the batch's store lines into the dirty bits."""
    cache = make_cache(2, 2)
    for line in (0, 2):  # fill set 0 with clean lines 0 and 2
        cache.access_many([line << cache._line_shift], [])
    turbo = turbo_cache_batch(
        cache, [0, 2, 0, 2], {2}, [False, True], [False, False], 2
    )
    assert turbo[:2] == (0, 0)
    assert all(not lines for lines in turbo[2:])
    assert dict(cache._sets[0]) == {0: False, 2: True}


def test_draw_table_row_masks_decode_to_slice_distinct_lines(monkeypatch):
    """`_build_table`'s per-row bitmasks are the index behind the
    steady-state wholesale path in `_execute_batch`: OR-ing a slice's
    rows must recover *exactly* the distinct lines (and distinct store
    lines) of that slice of the draw table, for every table a real run
    builds."""
    import numpy as np

    import repro.vm.turbovm as turbovm
    from repro.sim.config import ExperimentConfig
    from repro.sim.driver import RunSpec, execute

    def decode(masks, vals, off, end):
        m = int(np.bitwise_or.reduce(masks[off:end]))
        out = set()
        while m:
            bit = m & -m
            out.add(vals[bit.bit_length() - 1])
            m ^= bit
        return out

    orig = turbovm.TurboVirtualMachine._build_table
    checked = []

    def probe(self, plan, *args):
        result = orig(self, plan, *args)
        if plan.row_masks is not None:
            for off, width in ((0, 48), (117, 31), (1900, 100)):
                end = off + width
                assert decode(plan.row_masks, plan.mask_vals, off, end) == set(
                    plan.tbl[off:end].reshape(-1).tolist()
                )
                if plan.store_row_masks is not None:
                    assert decode(
                        plan.store_row_masks, plan.mask_vals, off, end
                    ) == set(plan.store_tbl[off:end].reshape(-1).tolist())
            checked.append(plan)
        return result

    monkeypatch.setattr(turbovm.TurboVirtualMachine, "_build_table", probe)
    execute(
        RunSpec(
            "db",
            "baseline",
            ExperimentConfig(max_instructions=400_000, sim_kernel="turbo"),
        )
    )
    assert checked, "no draw table qualified for the mask fast path"
