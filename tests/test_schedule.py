"""Cost-model-driven scheduling: planner, cost model, conformance.

The scheduler (docs/INTERNALS.md §18) must be invisible to results:
``schedule=fifo|lpt`` across every backend produces bit-identical
``BatchResult`` values and ordering — the conformance grid here proves
it, including with a trained cost model forcing genuinely different
packing.  The planner itself is pure (``repro.sim.schedule``), so its
edge cases — empty rounds, single cells, cells < workers, all-equal
estimates, cold start — are unit-tested directly, as is the cost model
(EWMA learning, instruction buckets, snapshot round-trip, store
warm-boot) and the estimate-relative straggler budget's extend-only
clamp.
"""

from __future__ import annotations

import json

import pytest

from repro.faults import FaultPlan
from repro.obs import Telemetry
from repro.sim import schedule as schedule_mod
from repro.sim.config import ExperimentConfig
from repro.sim.costmodel import (
    COST_MODEL_VERSION,
    SNAPSHOT_NAME,
    CostModel,
    cost_key,
    instruction_bucket,
)
from repro.sim.driver import RunSpec
from repro.sim.engine import Engine
from repro.sim.schedule import (
    MIN_ESTIMATE_COVERAGE,
    RoundPlan,
    legacy_chunks,
    plan_round,
    predict_makespan,
    straggler_budget,
)
from repro.sim.store import ResultStore

BUDGET = 25_000

#: Same grid as tests/test_backends.py: one spec per registered backend
#: kind, loopback for ssh.
CONFORMANCE_SPECS = ("serial", "local:2", "ssh-loopback:2")


def config(**kwargs) -> ExperimentConfig:
    return ExperimentConfig(max_instructions=BUDGET, **kwargs)


def grid(cfg=None) -> list:
    cfg = cfg or config()
    return [
        RunSpec(name, scheme, cfg)
        for name in ("db", "jess")
        for scheme in ("baseline", "bbv", "hotspot")
    ]


def spec(benchmark="db", scheme="hotspot", budget=BUDGET) -> RunSpec:
    return RunSpec(
        benchmark, scheme, ExperimentConfig(max_instructions=budget)
    )


def trained_model(specs, seconds=None) -> CostModel:
    """A cost model with one observation per spec (synthetic seconds)."""
    model = CostModel()
    for n, cell in enumerate(specs):
        model.observe(
            cell, seconds[n] if seconds is not None else 0.1 * (n + 1)
        )
    return model


# ---------------------------------------------------------------------------
# planner edge cases


class TestPlanner:
    def test_empty_round(self):
        plan = plan_round([], {}, workers=2)
        assert plan.chunks == []
        assert plan.cells == 0
        assert plan.predicted_makespan_s == 0.0

    def test_single_cell_falls_back_to_legacy(self):
        plan = plan_round([7], {7: 1.0}, workers=4)
        assert plan.chunks == [[7]]
        assert plan.mode in ("cold", "fifo")

    def test_fewer_cells_than_workers_one_chunk_each(self):
        estimates = {0: 3.0, 1: 1.0, 2: 2.0}
        plan = plan_round([0, 1, 2], estimates, workers=8)
        # Legacy auto-size is 1 here, so LPT keeps 3 chunks — one cell
        # each, dispatched heaviest first.
        assert sorted(map(tuple, plan.chunks)) == [(0,), (1,), (2,)]
        assert plan.chunks[0] == [0]  # heaviest (3.0s) dispatches first
        assert plan.mode == "lpt"

    def test_all_equal_estimates_is_deterministic(self):
        indices = list(range(12))
        estimates = {i: 1.0 for i in indices}
        first = plan_round(indices, estimates, workers=2)
        second = plan_round(indices, estimates, workers=2)
        assert first.chunks == second.chunks
        # Ties break by ascending cell index: cell 0 lands in the first
        # bin, and every chunk's members ascend.
        assert first.mode == "lpt"
        for chunk in first.chunks:
            assert chunk == sorted(chunk)
        assert sorted(i for c in first.chunks for i in c) == indices
        # Equal costs across 6 bins of 12 cells: all chunks size 2.
        assert [len(c) for c in first.chunks] == [2] * 6

    def test_cold_start_reproduces_legacy_exactly(self):
        # The acceptance contract: empty history == today's behaviour,
        # bit for bit, for every round shape.
        for n in (0, 1, 2, 3, 5, 8, 12, 33, 100):
            for workers in (1, 2, 4):
                for chunk_size in (None, 1, 3):
                    indices = list(range(n))
                    plan = plan_round(
                        indices,
                        {i: None for i in indices},
                        workers=workers,
                        chunk_size=chunk_size,
                        schedule="lpt",
                    )
                    assert plan.chunks == legacy_chunks(
                        indices, workers, chunk_size
                    ), (n, workers, chunk_size)
                    assert plan.mode == "cold"

    def test_fifo_forces_legacy_even_with_estimates(self):
        indices = list(range(10))
        estimates = {i: float(10 - i) for i in indices}
        plan = plan_round(indices, estimates, workers=2, schedule="fifo")
        assert plan.chunks == legacy_chunks(indices, 2, None)
        assert plan.mode == "fifo"

    def test_low_coverage_falls_back(self):
        indices = list(range(10))
        covered = int(len(indices) * MIN_ESTIMATE_COVERAGE) - 1
        estimates = {
            i: (1.0 if i < covered else None) for i in indices
        }
        plan = plan_round(indices, estimates, workers=2)
        assert plan.mode == "cold"
        assert plan.chunks == legacy_chunks(indices, 2, None)

    def test_unknown_cells_filled_with_median(self):
        indices = list(range(4))
        estimates = {0: 1.0, 1: 1.0, 2: 9.0, 3: None}
        plan = plan_round(indices, estimates, workers=2, chunk_size=2)
        assert plan.mode == "lpt"
        assert sorted(i for c in plan.chunks for i in c) == indices
        # Cell 2 (9.0s) dominates; it dispatches in the first chunk.
        assert 2 in plan.chunks[0]

    def test_skewed_round_beats_fifo_makespan(self):
        # 10 light + 2 heavy, heavies last: the bench cell's shape.
        estimates = {i: 1.0 for i in range(10)}
        estimates[10] = estimates[11] = 10.0
        indices = list(range(12))
        plan = plan_round(indices, estimates, workers=2)
        fifo = legacy_chunks(indices, 2, None)
        fifo_costs = [sum(estimates[i] for i in c) for c in fifo]
        assert plan.predicted_makespan_s < predict_makespan(fifo_costs, 2)
        # Each heavy cell gets a chunk to itself, dispatched first.
        assert plan.chunks[0] in ([10], [11])
        assert plan.chunks[1] in ([10], [11])

    def test_invalid_mode_raises(self):
        with pytest.raises(ValueError):
            plan_round([0], {}, workers=1, schedule="random")
        with pytest.raises(ValueError):
            Engine(schedule="random")

    def test_weighted_packing_loads_fast_slot_heavier(self):
        indices = list(range(8))
        estimates = {i: 1.0 for i in indices}
        plan = plan_round(
            indices,
            estimates,
            workers=2,
            chunk_size=4,
            slot_weights=[3.0, 1.0],
        )
        assert plan.mode == "lpt"
        # Two bins; bin 0 (the 3× slot) should carry ~3× the cells.
        sizes = sorted(len(c) for c in plan.chunks)
        assert sizes == [2, 6]


class TestPredictMakespan:
    def test_balanced(self):
        assert predict_makespan([1.0, 1.0, 1.0, 1.0], 2) == 2.0

    def test_weighted_slots(self):
        # A 2× slot finishes the same chunk in half the time.
        assert predict_makespan([4.0, 4.0], 2, [2.0, 1.0]) == 4.0

    def test_empty(self):
        assert predict_makespan([], 4) == 0.0


class TestStragglerBudget:
    def test_no_estimates_is_flat_legacy(self):
        assert straggler_budget(4.0, 0.5, [0, 1], {}) == 4.0 * 0.5 * 2

    def test_heavy_chunk_budget_scales_with_estimate(self):
        estimates = {i: 1.0 for i in range(10)}
        estimates[10] = 10.0
        flat = 4.0 * 0.5 * 1
        budget = straggler_budget(4.0, 0.5, [10], estimates)
        # A 10×-predicted chunk gets a ≥10× budget.
        assert budget >= flat * 10

    def test_low_estimates_never_shrink_the_budget(self):
        # A wildly wrong *low* estimate must not fire speculation
        # earlier than the legacy flat budget ever did.
        estimates = {i: 1.0 for i in range(10)}
        estimates[0] = 0.001
        flat = 4.0 * 0.5 * 1
        assert straggler_budget(4.0, 0.5, [0], estimates) == flat


# ---------------------------------------------------------------------------
# cost model


class TestCostModel:
    def test_instruction_bucket(self):
        assert instruction_bucket(None) == 0
        assert instruction_bucket(0) == 0
        assert instruction_bucket(-5) == 0
        assert instruction_bucket(300_000) == instruction_bucket(310_000)
        assert instruction_bucket(300_000) != instruction_bucket(3_000_000)

    def test_cost_key_ignores_seed_but_sees_kernel_and_budget(self):
        a = RunSpec(
            "db", "hotspot", ExperimentConfig(max_instructions=BUDGET)
        )
        b = RunSpec(
            "db",
            "hotspot",
            ExperimentConfig(max_instructions=BUDGET, seed=99),
        )
        assert cost_key(a) == cost_key(b)
        c = RunSpec(
            "db",
            "hotspot",
            ExperimentConfig(
                max_instructions=BUDGET, sim_kernel="reference"
            ),
        )
        assert cost_key(a) != cost_key(c)
        d = RunSpec(
            "db",
            "hotspot",
            ExperimentConfig(max_instructions=BUDGET * 100),
        )
        assert cost_key(a) != cost_key(d)

    def test_ewma_learning(self):
        model = CostModel(alpha=0.5)
        cell = spec()
        assert model.estimate(cell) is None
        model.observe(cell, 1.0)
        assert model.estimate(cell) == 1.0
        model.observe(cell, 3.0)
        assert model.estimate(cell) == pytest.approx(2.0)
        assert model.observations == 2
        assert model.dirty

    def test_negative_and_none_observations_ignored(self):
        model = CostModel()
        model.observe(spec(), -1.0)
        model.observe(spec(), None)
        assert model.estimate(spec()) is None

    def test_snapshot_round_trip(self, tmp_path):
        model = CostModel()
        model.observe(spec(), 1.25)
        model.observe_host("hostA#1", 4, 2.0)
        path = model.save_dir(tmp_path)
        assert path is not None and path.name == SNAPSHOT_NAME
        assert not model.dirty
        loaded = CostModel.load_dir(tmp_path)
        assert loaded.estimate(spec()) == pytest.approx(1.25)
        assert loaded.host_speed("hostA#1") == pytest.approx(2.0)

    def test_load_missing_or_corrupt_is_empty(self, tmp_path):
        assert CostModel.load_dir(tmp_path / "nope").known_keys == 0
        (tmp_path / SNAPSHOT_NAME).write_text("{torn")
        assert CostModel.load_dir(tmp_path).known_keys == 0
        (tmp_path / SNAPSHOT_NAME).write_text(
            json.dumps({"v": COST_MODEL_VERSION + 1, "estimates": []})
        )
        assert CostModel.load_dir(tmp_path).known_keys == 0

    def test_host_weights(self):
        model = CostModel()
        assert model.host_weights({"a#1": 1}) is None  # nothing observed
        model.observe_host("a#1", 4, 1.0)  # 4 cells/s
        model.observe_host("b#1", 1, 1.0)  # 1 cell/s
        weights = model.host_weights({"a#1": 1, "b#1": 1, "c#1": 1})
        # a is above the mean, b below, unobserved c gets 1.0.
        assert weights[0] > 1.0 > weights[1]
        assert weights[2] == 1.0
        assert all(w >= 0.05 for w in weights)

    def test_store_meta_and_bootstrap(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        model = CostModel()
        cell = spec()
        meta = model.store_meta(cell, 0.5, "hostA#1")
        assert meta["v"] == COST_MODEL_VERSION
        assert meta["elapsed_s"] == 0.5
        assert meta["executed_by"] == "hostA#1"
        from tests.test_sim_store import make_result

        store.put("db", "hotspot", "ab" * 32, make_result(), meta=meta)
        # An old-style entry without meta must coexist fine.
        store.put("db", "baseline", "cd" * 32, make_result())
        fresh = CostModel()
        assert fresh.bootstrap_from_store(store) == 1
        assert fresh.estimate(cell) == pytest.approx(0.5)
        assert not fresh.dirty  # replayed history is already persisted
        # Host speeds are never replayed across processes.
        assert fresh.host_speed("hostA#1") is None

    def test_bootstrap_skips_invalid_meta(self, tmp_path):
        model = CostModel()
        assert model._replay_meta(None) == 0
        assert model._replay_meta({"v": 999}) == 0
        assert (
            model._replay_meta(
                {"v": COST_MODEL_VERSION, "cost_key": ["a"], "elapsed_s": 1}
            )
            == 0
        )
        assert (
            model._replay_meta(
                {
                    "v": COST_MODEL_VERSION,
                    "cost_key": ["db", "hotspot", "fast", 15],
                    "elapsed_s": -2,
                }
            )
            == 0
        )
        assert model.known_keys == 0


# ---------------------------------------------------------------------------
# engine integration


class TestEngineIntegration:
    def test_fingerprint_never_sees_scheduling(self):
        cfg = config()
        fingerprint = cfg.fingerprint()
        from repro.sim.config import canonicalize

        canonical = str(canonicalize(cfg))
        for field in ("schedule", "cost_model", "cost_model_dir", "lpt"):
            assert field not in canonical
        assert cfg.fingerprint() == fingerprint

    def test_serial_path_feeds_the_model_and_store_meta(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        engine = Engine(store=store, memory_cache={})
        cell = spec()
        try:
            engine.run([cell])
        finally:
            engine.close()
        assert engine.cost_model.estimate(cell) is not None
        metas = list(store.iter_meta())
        assert len(metas) == 1
        assert metas[0]["elapsed_s"] > 0
        assert metas[0]["executed_by"]  # host#pid of this process
        assert metas[0]["cost_key"] == list(cost_key(cell))

    def test_pool_path_feeds_the_model(self):
        engine = Engine(jobs=2, use_cache=False, memory_cache={})
        specs = grid()
        try:
            engine.run(specs)
        finally:
            engine.close()
        for cell in specs:
            assert engine.cost_model.estimate(cell) is not None
        assert engine.stats.rounds_planned >= 1
        # First round is cold (no history yet).
        assert engine.stats.rounds_lpt == 0

    def test_second_batch_plans_lpt_and_emits_event(self):
        from repro.obs.events import SCHEDULE_PLANNED

        telemetry = Telemetry()
        engine = Engine(
            jobs=2, use_cache=False, memory_cache={}, telemetry=telemetry
        )
        specs = grid()
        try:
            engine.run(specs)
            engine.run(specs)
        finally:
            engine.close()
        assert engine.stats.rounds_lpt >= 1
        assert engine.stats.cells_cost_estimated >= len(specs)
        assert engine.stats.predicted_makespan_s > 0
        assert engine.stats.actual_makespan_s > 0
        events = telemetry.log.by_name(SCHEDULE_PLANNED)
        assert len(events) >= 2
        modes = [e.args["mode"] for e in events]
        assert "cold" in modes and "lpt" in modes
        lpt_event = next(e for e in events if e.args["mode"] == "lpt")
        assert lpt_event.args["predicted_makespan_s"] > 0
        assert lpt_event.args["actual_makespan_s"] > 0
        assert lpt_event.args["cells"] == len(specs)

    def test_cost_model_dir_round_trip(self, tmp_path):
        model_dir = tmp_path / "model"
        engine = Engine(
            use_cache=False, memory_cache={}, cost_model_dir=model_dir
        )
        cell = spec()
        try:
            engine.run([cell])
        finally:
            engine.close()
        assert (model_dir / SNAPSHOT_NAME).exists()
        # A fresh engine warm-boots from the snapshot.
        warmed = Engine(
            use_cache=False, memory_cache={}, cost_model_dir=model_dir
        )
        try:
            assert warmed.cost_model.estimate(cell) is not None
        finally:
            warmed.close()

    def test_wrong_estimates_cannot_break_results(self):
        # Poison the model with absurd estimates in both directions:
        # values and ordering must still be bit-identical to serial.
        specs = grid()
        serial = Engine(pool="serial", use_cache=False, memory_cache={})
        try:
            expected = serial.run(specs).values()
        finally:
            serial.close()
        model = CostModel()
        for n, cell in enumerate(specs):
            model.observe(cell, 1e6 if n % 2 else 1e-9)
        engine = Engine(
            jobs=2, use_cache=False, memory_cache={}, cost_model=model
        )
        try:
            batch = engine.run(specs)
        finally:
            engine.close()
        assert batch.values() == expected
        assert engine.stats.rounds_lpt >= 1


# ---------------------------------------------------------------------------
# conformance grid: schedule x backend, bit-identical to serial


@pytest.mark.parametrize("backend", CONFORMANCE_SPECS)
@pytest.mark.parametrize("schedule", ("fifo", "lpt"))
def test_schedule_conformance_bit_identical(backend, schedule):
    specs = grid()
    reference = Engine(pool="serial", use_cache=False, memory_cache={})
    try:
        expected = reference.run(specs).values()
    finally:
        reference.close()
    # A trained model so lpt actually re-packs (skewed synthetic
    # history: later cells "cost" more).
    model = trained_model(specs)
    engine = Engine(
        pool=backend,
        use_cache=False,
        memory_cache={},
        schedule=schedule,
        cost_model=model,
    )
    try:
        batch = engine.run(specs)
    finally:
        engine.close()
    assert batch.values() == expected
    assert [o.status for o in batch] == ["ok"] * len(specs)


# ---------------------------------------------------------------------------
# host death mid-batch: re-planning against survivors


@pytest.mark.chaos
class TestHostDeathReplanning:
    #: Seed 12 at p=0.5: loop0@incarnation-1 draws dead, loop1 alive
    #: (same draw the resilience suite documents).
    PLAN = dict(seed=12, host_down=0.5)

    def test_rerouted_chunks_replan_against_survivors(self):
        specs = grid()
        expected_engine = Engine(
            pool="serial", use_cache=False, memory_cache={}
        )
        try:
            expected = expected_engine.run(specs).values()
        finally:
            expected_engine.close()
        model = trained_model(specs)
        engine = Engine(
            pool="ssh-loopback:2",
            use_cache=False,
            memory_cache={},
            fault_plan=FaultPlan(**self.PLAN),
            max_retries=3,
            chunk_size=1,
            failure_policy="partial",
            cost_model=model,
        )
        try:
            batch = engine.run(specs)
            # After the death the pool's live-slot map only names the
            # survivor: re-planned rounds weigh surviving hosts only.
            slots = engine.pool.host_slots()
        finally:
            engine.close()
        assert [o.status for o in batch] == ["ok"] * len(specs)
        assert batch.values() == expected
        assert engine.stats.cells_rerouted > 0
        assert len(slots) == 1  # one of two hosts is gone
        host_id = next(iter(slots))
        assert "#" in host_id  # host#incarnation identity

    def test_host_slots_before_and_after_start(self):
        from repro.sim.pools import make_pool

        pool = make_pool("ssh-loopback:2")
        cold = pool.host_slots()
        assert len(cold) == 2
        assert all("#" in host for host in cold)
        try:
            pool.start()
            live = pool.host_slots()
            assert len(live) == 2
            assert all(slots >= 1 for slots in live.values())
        finally:
            pool.close()
