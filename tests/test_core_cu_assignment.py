"""Unit tests for CU decoupling / size classification."""

import pytest

from repro.core.cu_assignment import SizeClassifier
from repro.sim.config import MachineConfig, build_machine


@pytest.fixture
def classifier():
    # Scaled paper intervals: L1D 1K, L2 10K.
    return SizeClassifier({"L1D": 1_000, "L2": 10_000})


class TestBands:
    def test_l1d_band(self, classifier):
        lower, upper = classifier.band("L1D")
        assert lower == 500
        assert upper == 5_000

    def test_largest_cu_unbounded(self, classifier):
        lower, upper = classifier.band("L2")
        assert lower == 5_000
        assert upper == float("inf")

    def test_paper_band_values(self):
        # Unscaled: L1D hotspots 50K-500K, L2 hotspots >= 500K (§3.2.1).
        paper = SizeClassifier({"L1D": 100_000, "L2": 1_000_000})
        assert paper.band("L1D") == (50_000, 500_000)
        assert paper.band("L2")[0] == 500_000


class TestAssignment:
    @pytest.mark.parametrize(
        "size, expected",
        [
            (100, ()),
            (499, ()),
            (500, ("L1D",)),
            (3_000, ("L1D",)),
            (4_999, ("L1D",)),
            (5_000, ("L2",)),
            (50_000, ("L2",)),
            (10_000_000, ("L2",)),
        ],
    )
    def test_size_to_cus(self, classifier, size, expected):
        assert classifier.cus_for_size(size) == expected

    def test_assignment_object(self, classifier):
        assignment = classifier.assign("hs", 2_000)
        assert assignment.is_managed
        assert assignment.cu_names == ("L1D",)
        unmanaged = classifier.assign("tiny", 10)
        assert not unmanaged.is_managed

    def test_classify_kind(self, classifier):
        assert classifier.classify_kind(100) == "unmanaged"
        assert classifier.classify_kind(1_000) == "L1D"
        assert classifier.classify_kind(20_000) == "L2"

    def test_shared_interval_cus_share_band(self):
        classifier = SizeClassifier(
            {"IQ": 100, "ROB": 100, "L2": 10_000}
        )
        assert classifier.cus_for_size(200) == ("IQ", "ROB")
        # Kind reporting picks one deterministic representative.
        assert classifier.classify_kind(200) in ("IQ", "ROB")

    def test_from_machine(self):
        machine = build_machine(MachineConfig())
        classifier = SizeClassifier.from_machine(machine)
        assert set(classifier.intervals) == {"L1D", "L2"}
        assert classifier.intervals["L1D"] == 1_000
        assert classifier.intervals["L2"] == 10_000

    def test_rejects_empty_and_bad_intervals(self):
        with pytest.raises(ValueError):
            SizeClassifier({})
        with pytest.raises(ValueError):
            SizeClassifier({"x": 0})
