"""CLI tests (parser wiring and a tiny end-to-end invocation)."""

import pytest

from repro.cli import ALL_EXHIBITS, build_parser, main, make_config


class TestParser:
    def test_exhibit_choices(self):
        parser = build_parser()
        args = parser.parse_args(["figure3"])
        assert args.exhibit == "figure3"
        for name in ALL_EXHIBITS:
            parser.parse_args([name])

    def test_unknown_exhibit_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["figure9"])

    def test_benchmark_filter(self):
        args = build_parser().parse_args(
            ["table4", "--benchmarks", "db", "mtrt"]
        )
        assert args.benchmarks == ["db", "mtrt"]

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["table4", "--benchmarks", "spec2017"]
            )

    def test_config_overrides(self):
        args = build_parser().parse_args(
            ["table4", "--instructions", "123", "--hot-threshold", "7",
             "--seed", "9"]
        )
        config = make_config(args)
        assert config.max_instructions == 123
        assert config.hot_threshold == 7
        assert config.seed == 9


class TestMain:
    def test_static_exhibits(self, capsys):
        assert main(["table2"]) == 0
        assert "L1 D-cache" in capsys.readouterr().out
        assert main(["table3"]) == 0

    def test_quick_run(self, capsys):
        code = main(
            ["quick", "--benchmarks", "db", "--instructions", "300000"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "L1D energy reduction" in out
        assert "slowdown" in out

    def test_suite_exhibit_small(self, capsys):
        code = main(
            ["figure4", "--benchmarks", "db",
             "--instructions", "300000"]
        )
        assert code == 0
        assert "Figure 4" in capsys.readouterr().out
