"""CLI tests (parser wiring and a tiny end-to-end invocation)."""

import json

import pytest

from repro.cli import ALL_EXHIBITS, build_parser, main, make_config


class TestParser:
    def test_exhibit_choices(self):
        parser = build_parser()
        args = parser.parse_args(["figure3"])
        assert args.exhibit == "figure3"
        for name in ALL_EXHIBITS:
            parser.parse_args([name])

    def test_unknown_exhibit_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["figure9"])

    def test_benchmark_filter(self):
        args = build_parser().parse_args(
            ["table4", "--benchmarks", "db", "mtrt"]
        )
        assert args.benchmarks == ["db", "mtrt"]

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["table4", "--benchmarks", "spec2017"]
            )

    def test_run_command_flags(self):
        args = build_parser().parse_args(
            ["run", "db", "--scheme", "bbv", "--trace", "t.json",
             "--metrics", "--stats-json", "s.json"]
        )
        assert args.exhibit == "run"
        assert args.bench == "db"
        assert args.scheme == "bbv"
        assert args.trace == "t.json"
        assert args.metrics is True
        assert args.stats_json == "s.json"

    def test_config_overrides(self):
        args = build_parser().parse_args(
            ["table4", "--instructions", "123", "--hot-threshold", "7",
             "--seed", "9"]
        )
        config = make_config(args)
        assert config.max_instructions == 123
        assert config.hot_threshold == 7
        assert config.seed == 9


class TestMain:
    def test_static_exhibits(self, capsys):
        assert main(["table2"]) == 0
        assert "L1 D-cache" in capsys.readouterr().out
        assert main(["table3"]) == 0

    def test_quick_run(self, capsys):
        code = main(
            ["quick", "--benchmarks", "db", "--instructions", "300000"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "L1D energy reduction" in out
        assert "slowdown" in out

    def test_suite_exhibit_small(self, capsys):
        code = main(
            ["figure4", "--benchmarks", "db",
             "--instructions", "300000"]
        )
        assert code == 0
        assert "Figure 4" in capsys.readouterr().out

    def test_run_without_benchmark_errors(self, capsys):
        assert main(["run"]) == 2
        assert "needs a benchmark" in capsys.readouterr().err

    def test_run_with_trace_and_stats(self, capsys, tmp_path):
        trace_path = tmp_path / "out.json"
        stats_path = tmp_path / "stats.json"
        code = main(
            ["run", "db", "--scheme", "hotspot",
             "--instructions", "300000",
             "--trace", str(trace_path), "--metrics",
             "--stats-json", str(stats_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "db/hotspot" in out
        assert "trace written" in out
        assert "config_pinned" in out  # --metrics summary

        trace = json.loads(trace_path.read_text())
        names = {
            e["name"]
            for e in trace["traceEvents"]
            if e["ph"] != "M"
        }
        assert {"hotspot_detected", "config_tried", "config_pinned"} <= names

        stats = json.loads(stats_path.read_text())
        assert stats["simulations"] == 1
        assert stats["elapsed_seconds"] >= 0


class TestStoreGC:
    @staticmethod
    def _load_tool():
        import importlib.util
        from pathlib import Path

        path = (
            Path(__file__).resolve().parent.parent
            / "tools"
            / "store_gc.py"
        )
        spec = importlib.util.spec_from_file_location("store_gc", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_list_renders_aligned_table(self, capsys, tmp_path):
        from repro.sim.experiment import (
            get_default_store,
            set_default_store,
        )

        store_dir = tmp_path / "store"
        previous = get_default_store()
        try:
            # An instruction count no other test uses, so the cells miss
            # the process-wide memory cache and actually reach the store.
            code = main(
                ["quick", "--benchmarks", "db",
                 "--instructions", "310000",
                 "--store-dir", str(store_dir)]
            )
            assert code == 0
        finally:
            set_default_store(previous)
        capsys.readouterr()

        store_gc = self._load_tool()
        assert store_gc.main(["--store-dir", str(store_dir), "--list"]) == 0
        out = capsys.readouterr().out
        lines = out.splitlines()
        header, rule = lines[0], lines[1]
        assert header.split() == [
            "file", "benchmark", "scheme", "fingerprint", "schema",
            "bytes", "shard", "shard-bytes", "age",
        ]
        assert set(rule) <= {"-", " "}
        body = lines[2:-1]
        assert len(body) == 3  # baseline/bbv/hotspot cells
        schema_col = header.index("schema")
        bytes_col = header.index("bytes")
        age_col = header.index("age")
        for line in body:
            assert line[schema_col:].startswith("v")
            assert int(line[bytes_col:].split()[0]) > 0
            assert line[age_col:].rstrip().endswith("d")
        assert "3 entries" in lines[-1]

    def test_list_flags_quarantined_and_tmp_files(self, capsys, tmp_path):
        from repro.sim.store import ResultStore

        store_dir = tmp_path / "store"
        store_dir.mkdir()
        # A quarantined entry with its reason sidecar, plus crashed-
        # writer debris — exactly what a chaotic run leaves behind.
        (store_dir / "db__hotspot__abc.json.corrupt").write_text("{trunc")
        (store_dir / "db__hotspot__abc.json.corrupt.reason").write_text(
            "unreadable entry: JSONDecodeError\nquarantined: 1754000000\n"
        )
        (store_dir / "db__hotspot__abc.jsonK7Q.tmp").write_text("{half")

        store_gc = self._load_tool()
        assert store_gc.main(["--store-dir", str(store_dir), "--list"]) == 0
        out = capsys.readouterr().out
        assert "1 quarantined (corrupt) file(s):" in out
        assert "db__hotspot__abc.json.corrupt: unreadable entry" in out
        assert "1 leftover .tmp file(s)" in out
        assert "db__hotspot__abc.jsonK7Q.tmp" in out

        # --all --prune wipes them (and the reason sidecar) too.
        assert store_gc.main(
            ["--store-dir", str(store_dir), "--all", "--prune"]
        ) == 0
        out = capsys.readouterr().out
        assert "+2 corrupt/tmp file(s)" in out
        assert list(store_dir.iterdir()) == []
        assert ResultStore(store_dir).corrupt_files() == []

    def test_max_bytes_prunes_lru_by_mtime(self, capsys, tmp_path):
        import json as json_mod
        import os as os_mod

        from repro.sim.store import ResultStore

        store_dir = tmp_path / "store"
        # Four 1000-byte entries with strictly increasing mtimes; a
        # 2500-byte cap must evict exactly the two oldest (LRU).
        names = []
        for n in range(4):
            fingerprint = f"{n:x}{n:x}" * 32
            shard = store_dir / fingerprint[:2]
            shard.mkdir(parents=True, exist_ok=True)
            payload = {
                "schema": 1,
                "fingerprint": fingerprint,
                "benchmark": "db",
                "scheme": "baseline",
                "created": 1_754_000_000 + n,
                "result": {},
            }
            body = json_mod.dumps(payload)
            # Trailing whitespace keeps the JSON valid while pinning the
            # file to exactly 1000 bytes.
            body += " " * (1000 - len(body))
            path = shard / f"db__baseline__{fingerprint[:24]}.json"
            path.write_text(body)
            os_mod.utime(path, (1_754_000_000 + n, 1_754_000_000 + n))
            names.append(path.name)

        store_gc = self._load_tool()
        # Dry run first: reports, deletes nothing.
        assert store_gc.main(
            ["--store-dir", str(store_dir), "--max-bytes", "2500"]
        ) == 0
        out = capsys.readouterr().out
        assert "would prune 2 of 4 entries" in out
        assert names[0] in out and names[1] in out
        assert sum(
            1 for _ in ResultStore(store_dir).entries()
        ) == 4

        # Real prune: the two oldest go, the two newest survive.
        assert store_gc.main(
            ["--store-dir", str(store_dir), "--max-bytes", "2500",
             "--prune"]
        ) == 0
        out = capsys.readouterr().out
        assert "pruning 2 of 4 entries" in out
        survivors = {
            entry.path.name for entry in ResultStore(store_dir).entries()
        }
        assert survivors == {names[2], names[3]}

        # Already under the cap: nothing selected.
        assert store_gc.main(
            ["--store-dir", str(store_dir), "--max-bytes", "2500",
             "--prune"]
        ) == 0
        out = capsys.readouterr().out
        assert "pruning 0 of 2 entries" in out
