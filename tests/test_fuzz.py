"""Fuzzing: the full stack must hold its invariants on arbitrary
well-formed programs, not just the calibrated stand-ins."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.policy import HotspotACEPolicy
from repro.isa.assembler import assemble
from repro.isa.disasm import disassemble_program
from repro.phases.policy import BBVACEPolicy
from repro.sim.config import MachineConfig, build_machine
from repro.vm.vm import AdaptationHooks, VMConfig, VirtualMachine
from repro.workloads.synthetic import random_program


def run_policy_on(program, policy, budget=60_000):
    machine = build_machine(MachineConfig())
    vm = VirtualMachine(
        program, machine, policy=policy,
        config=VMConfig(hot_threshold=2),
    )
    vm.run(budget)
    return vm


def check_invariants(vm):
    machine = vm.machine
    assert machine.cycles > 0
    assert machine.instructions > 0
    assert machine.energy.l1d.total_nj >= 0
    assert machine.energy.l2.total_nj >= 0
    assert machine.energy.memory_nj >= 0
    assert 0 <= vm.stats.instructions_in_hotspots <= machine.instructions
    l1 = machine.hierarchy.l1d
    assert l1.resident_lines <= l1.n_lines
    assert 0.0 <= l1.stats.miss_rate <= 1.0


class TestFuzzPolicies:
    @given(seed=st.integers(min_value=0, max_value=5_000))
    @settings(max_examples=12, deadline=None)
    def test_hotspot_policy_on_random_programs(self, seed):
        program = random_program(seed)
        policy = HotspotACEPolicy()
        vm = run_policy_on(program, policy)
        check_invariants(vm)
        stats = policy.finalize()
        for value in stats.coverage.values():
            assert 0.0 <= value <= 1.0
        assert stats.tuned_hotspots <= stats.managed_hotspots

    @given(seed=st.integers(min_value=0, max_value=5_000))
    @settings(max_examples=10, deadline=None)
    def test_bbv_policy_on_random_programs(self, seed):
        program = random_program(seed)
        policy = BBVACEPolicy()
        vm = run_policy_on(program, policy)
        check_invariants(vm)
        stats = policy.finalize()
        assert stats.tuned_phases <= stats.n_phases
        assert (
            stats.intervals_in_tuned_phases <= stats.intervals_total
        )

    @given(seed=st.integers(min_value=0, max_value=5_000))
    @settings(max_examples=12, deadline=None)
    def test_adaptive_and_static_execute_same_stream(self, seed):
        program = random_program(seed)
        adaptive = run_policy_on(program, HotspotACEPolicy())
        static = run_policy_on(program, AdaptationHooks())
        # Adaptation must not change the executed instruction stream.
        assert (
            adaptive.machine.instructions == static.machine.instructions
        )
        assert (
            adaptive.stats.blocks_executed == static.stats.blocks_executed
        )


class TestFuzzAssemblerRoundTrip:
    @given(seed=st.integers(min_value=0, max_value=5_000))
    @settings(max_examples=25, deadline=None)
    def test_disassemble_reassemble_structure(self, seed):
        original = random_program(seed, with_memory=False)
        text = disassemble_program(original)
        again = assemble(text)
        assert set(again.methods) == set(original.methods)
        for name, method in original.methods.items():
            again_method = again.methods[name]
            assert set(again_method.blocks) == set(method.blocks)
            for bid, block in method.blocks.items():
                again_block = again_method.blocks[bid]
                assert again_block.n_instructions == block.n_instructions
                assert again_block.successors() == block.successors()
                assert [c.callee for c in again_block.calls] == [
                    c.callee for c in block.calls
                ]

    @given(seed=st.integers(min_value=0, max_value=5_000))
    @settings(max_examples=10, deadline=None)
    def test_reassembled_program_runs(self, seed):
        original = random_program(seed, with_memory=False)
        again = assemble(disassemble_program(original))
        vm = run_policy_on(again, AdaptationHooks(), budget=20_000)
        assert vm.machine.instructions > 0
