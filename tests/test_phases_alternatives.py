"""Tests for the alternative baselines: positional adaptation,
next-phase prediction, and working-set-signature detection."""

import pytest

from repro.phases.positional import (
    LargeProcedureClassifier,
    PositionalACEPolicy,
)
from repro.phases.prediction import NextPhasePredictor
from repro.phases.working_set import (
    WorkingSetAccumulator,
    WorkingSetClassifier,
    make_working_set_policy,
    relative_signature_distance,
)
from repro.sim.config import ExperimentConfig, MachineConfig, build_machine
from repro.sim.driver import run_benchmark
from repro.vm.vm import VMConfig, VirtualMachine
from repro.workloads.specjvm import build_benchmark
from tests.conftest import make_two_tier_program


class TestLargeProcedureClassifier:
    def test_threshold_defaults_to_slowest_interval(self):
        classifier = LargeProcedureClassifier(
            {"L1D": 1_000, "L2": 10_000}
        )
        assert classifier.min_size == 10_000

    def test_all_or_nothing_assignment(self):
        classifier = LargeProcedureClassifier(
            {"L1D": 1_000, "L2": 10_000}, min_size=5_000
        )
        assert classifier.cus_for_size(4_999) == ()
        assert classifier.cus_for_size(5_000) == ("L1D", "L2")
        assert classifier.classify_kind(6_000) == "procedure"
        assert classifier.classify_kind(100) == "unmanaged"


class TestPositionalPolicy:
    def run(self, max_instructions=800_000):
        machine = build_machine(MachineConfig())
        # The two-tier driver is ~8K instructions inclusive; bound
        # "large" below that so it qualifies while the ~1.3K mid does not.
        policy = PositionalACEPolicy(min_procedure_size=5_000)
        vm = VirtualMachine(
            make_two_tier_program(), machine,
            policy=policy, config=VMConfig(hot_threshold=3),
        )
        vm.run(max_instructions)
        return policy

    def test_only_large_procedures_managed(self):
        policy = self.run()
        # The two-tier program: driver ~8K inclusive (managed),
        # mid ~1.3K (below the large-procedure bar).
        assert "driver" in policy.states
        assert "mid" in policy.unmanaged

    def test_combinatorial_lists(self):
        policy = self.run()
        for state in policy.states.values():
            assert len(state.config_list) == 16
            assert set(state.cu_names) == {"L1D", "L2"}

    def test_positional_vs_hotspot_granularity(self):
        from repro.core.policy import HotspotACEPolicy

        positional = self.run()
        machine = build_machine(MachineConfig())
        hotspot_policy = HotspotACEPolicy()
        vm = VirtualMachine(
            make_two_tier_program(), machine,
            policy=hotspot_policy, config=VMConfig(hot_threshold=3),
        )
        vm.run(800_000)
        # §3.5: the framework manages finer grains than the positional
        # approach can.
        assert len(hotspot_policy.states) > len(positional.states)


class TestNextPhasePredictor:
    def test_learns_repeating_sequence(self):
        predictor = NextPhasePredictor(confidence=0.6, min_samples=2)
        for _ in range(5):
            predictor.observe(0)
            predictor.observe(1)
        # After observing a 0, predict 1.
        predictor.observe(0)
        assert predictor.predict_next() == 1

    def test_accuracy_tracking(self):
        predictor = NextPhasePredictor(confidence=0.5, min_samples=1)
        for _ in range(4):
            predictor.observe(0)
            predictor.observe(1)
        predictor.observe(0)
        assert predictor.predict_next() == 1
        predictor.observe(1)  # correct
        assert predictor.predict_next() == 0
        predictor.observe(5)  # wrong
        assert predictor.predictions == 2
        assert predictor.correct == 1
        assert predictor.accuracy == 0.5

    def test_no_prediction_below_confidence(self):
        predictor = NextPhasePredictor(confidence=0.9, min_samples=2)
        predictor.observe(0)
        predictor.observe(1)
        predictor.observe(0)
        predictor.observe(2)
        predictor.observe(0)
        # successors of 0: {1: 1, 2: 1} — 50% < 90%.
        assert predictor.predict_next() is None

    def test_no_prediction_without_history(self):
        predictor = NextPhasePredictor()
        assert predictor.predict_next() is None

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            NextPhasePredictor(confidence=0.0)
        with pytest.raises(ValueError):
            NextPhasePredictor(min_samples=0)

    def test_predictor_integrates_with_bbv_policy(self):
        from repro.phases.policy import BBVACEPolicy

        config = ExperimentConfig(max_instructions=600_000)
        policy = BBVACEPolicy(
            tuning=config.tuning,
            next_phase_predictor=NextPhasePredictor(),
        )
        result = run_benchmark(
            build_benchmark("javac"), "bbv", config, policy=policy
        )
        stats = result.bbv_stats
        assert stats.prediction_accuracy is not None
        assert policy.next_phase_predictor.predictions >= 0


class TestWorkingSetSignatures:
    def test_distance_identities(self):
        assert relative_signature_distance(0, 0) == 0.0
        assert relative_signature_distance(0b1010, 0b1010) == 0.0
        assert relative_signature_distance(0b1100, 0b0011) == 1.0
        assert relative_signature_distance(0b1110, 0b0111) == (
            pytest.approx(0.5)
        )

    def test_accumulator_sets_bits(self):
        acc = WorkingSetAccumulator(n_bits=64, granularity_shift=6)
        acc.observe(0x1000, 10)
        acc.observe(0x1000, 10)  # same chunk -> same bit
        assert bin(acc.peek()).count("1") == 1
        acc.observe(0x9000, 5)
        assert bin(acc.peek()).count("1") == 2

    def test_harvest_clears(self):
        acc = WorkingSetAccumulator()
        acc.observe(0x1234, 1)
        assert acc.harvest() != 0
        assert acc.peek() == 0

    def test_classifier_matches_similar_sets(self):
        classifier = WorkingSetClassifier(similarity_threshold=0.5)
        pid0, is_new, _ = classifier.classify(0b111100)
        assert is_new
        pid1, is_new, _ = classifier.classify(0b111110)  # small delta
        assert not is_new and pid1 == pid0
        pid2, is_new, _ = classifier.classify(0b11000011000000)
        assert is_new and pid2 != pid0

    def test_signature_replacement_tracks_drift(self):
        classifier = WorkingSetClassifier(similarity_threshold=0.5)
        classifier.classify(0b1111)
        classifier.classify(0b1110)   # match; stored becomes 0b1110
        pid, is_new, _ = classifier.classify(0b1100)
        assert not is_new  # close to the drifted signature

    def test_working_set_policy_runs(self):
        config = ExperimentConfig(max_instructions=600_000)
        policy = make_working_set_policy(tuning=config.tuning)
        result = run_benchmark(
            build_benchmark("db"), "bbv", config, policy=policy
        )
        assert result.scheme == "working-set"
        stats = result.bbv_stats
        assert stats.n_phases >= 1
        assert stats.intervals_total >= 55

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkingSetAccumulator(n_bits=0)
        with pytest.raises(ValueError):
            WorkingSetAccumulator(granularity_shift=-1)
