"""Unit tests for program structure, deciders, validation and layout."""

import random

import pytest

from repro.isa.instructions import InstructionMix
from repro.isa.program import (
    AlternatingDecider,
    BasicBlock,
    CallSite,
    CondBranch,
    DataRegion,
    Goto,
    INSTRUCTION_BYTES,
    LoopDecider,
    Method,
    PeriodicDecider,
    PersistentAlternatingDecider,
    Program,
    ProgramValidationError,
    RandomDecider,
    Return,
)


def block(bid, term, insns=10, calls=()):
    return BasicBlock(
        bid, InstructionMix(total=insns), term,
        calls=[CallSite(c) for c in calls],
    )


def simple_method(name="m", calls=()):
    return Method(
        name,
        [block("b0", Goto("b1"), calls=calls), block("b1", Return())],
        "b0",
    )


class TestDataRegion:
    def test_bounds(self):
        region = DataRegion(0x1000, 256)
        assert region.end == 0x1100
        assert region.contains(0x1000)
        assert region.contains(0x10FF)
        assert not region.contains(0x1100)

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            DataRegion(0, 0)
        with pytest.raises(ValueError):
            DataRegion(-1, 16)


class TestDeciders:
    def test_loop_decider_fixed_trips(self):
        decider = LoopDecider(4)
        rng = random.Random(0)
        state = decider.initial_state(rng)
        outcomes = []
        for _ in range(8):
            taken, state = decider.decide(state, rng)
            outcomes.append(taken)
        # 3 taken (back edges), then fall-through, then re-armed.
        assert outcomes == [True, True, True, False] * 2

    def test_loop_decider_trips_of_one_never_loops(self):
        decider = LoopDecider(1)
        rng = random.Random(0)
        state = decider.initial_state(rng)
        for _ in range(5):
            taken, state = decider.decide(state, rng)
            assert taken is False

    def test_loop_decider_callable_trips_clamped(self):
        decider = LoopDecider(lambda rng: -3)
        rng = random.Random(0)
        state = decider.initial_state(rng)
        assert state == 1  # clamped to >= 1

    def test_loop_decider_rejects_zero(self):
        with pytest.raises(ValueError):
            LoopDecider(0)

    def test_random_decider_bias(self):
        decider = RandomDecider(0.8)
        rng = random.Random(7)
        state = decider.initial_state(rng)
        taken = 0
        for _ in range(2000):
            outcome, state = decider.decide(state, rng)
            taken += outcome
        assert 1500 < taken < 1900

    def test_random_decider_bounds(self):
        with pytest.raises(ValueError):
            RandomDecider(1.5)

    def test_alternating_decider_period(self):
        decider = AlternatingDecider(3)
        rng = random.Random(0)
        state = decider.initial_state(rng)
        outcomes = []
        for _ in range(12):
            taken, state = decider.decide(state, rng)
            outcomes.append(taken)
        assert outcomes == [True] * 3 + [False] * 3 + [True] * 3 + [False] * 3

    def test_periodic_decider_pattern(self):
        decider = PeriodicDecider([True, False, False])
        rng = random.Random(0)
        state = decider.initial_state(rng)
        outcomes = []
        for _ in range(6):
            taken, state = decider.decide(state, rng)
            outcomes.append(taken)
        assert outcomes == [True, False, False, True, False, False]

    def test_periodic_rejects_empty(self):
        with pytest.raises(ValueError):
            PeriodicDecider([])

    def test_persistence_flags(self):
        assert not AlternatingDecider(2).persistent
        assert PersistentAlternatingDecider(2).persistent
        assert not LoopDecider(3).persistent


class TestBasicBlock:
    def test_branch_count_derived_from_terminator(self):
        b = block("b0", Goto("b1"), insns=10)
        assert b.mix.branches == 1
        r = block("r", Return(), insns=10)
        assert r.mix.branches == 0

    def test_call_count_derived(self):
        b = block("b0", Goto("b1"), calls=["f", "g"])
        assert b.mix.calls == 2

    def test_total_grows_to_fit_derived_instructions(self):
        b = BasicBlock(
            "b0",
            InstructionMix(total=1),
            Goto("b1"),
            calls=[CallSite("f")],
        )
        assert b.n_instructions >= 2  # call + branch

    def test_successors(self):
        cond = BasicBlock(
            "c", InstructionMix(total=4),
            CondBranch("t", "f", RandomDecider(0.5)),
        )
        assert cond.successors() == ["t", "f"]
        assert block("g", Goto("x")).successors() == ["x"]
        assert block("r", Return()).successors() == []

    def test_rejects_empty_bid(self):
        with pytest.raises(ValueError):
            block("", Return())


class TestMethodValidation:
    def test_unknown_target_rejected(self):
        method = Method("m", [block("b0", Goto("nope")),
                              block("b1", Return())], "b0")
        with pytest.raises(ProgramValidationError):
            method.validate()

    def test_no_return_rejected(self):
        method = Method(
            "m",
            [block("b0", Goto("b1")), block("b1", Goto("b0"))],
            "b0",
        )
        with pytest.raises(ProgramValidationError):
            method.validate()

    def test_block_unable_to_reach_return_rejected(self):
        blocks = [
            block("b0", Goto("b1")),
            block("b1", Return()),
            block("spin", Goto("spin")),
        ]
        method = Method("m", blocks, "b0")
        with pytest.raises(ProgramValidationError) as err:
            method.validate()
        assert "spin" in str(err.value)

    def test_duplicate_block_rejected(self):
        with pytest.raises(ProgramValidationError):
            Method("m", [block("b0", Return()), block("b0", Return())], "b0")

    def test_missing_entry_rejected(self):
        with pytest.raises(ProgramValidationError):
            Method("m", [block("b0", Return())], "zzz")

    def test_callees_deduplicated_in_order(self):
        blocks = [
            block("b0", Goto("b1"), calls=["f", "g"]),
            block("b1", Return(), calls=["f"]),
        ]
        method = Method("m", blocks, "b0")
        assert method.callees() == ["f", "g"]


class TestProgramValidation:
    def test_unknown_callee_rejected(self):
        program = Program([simple_method("main", calls=["ghost"])], "main")
        with pytest.raises(ProgramValidationError):
            program.validate()

    def test_recursion_rejected(self):
        a = simple_method("a", calls=["b"])
        b = simple_method("b", calls=["a"])
        with pytest.raises(ProgramValidationError):
            Program([a, b], "a").validate()

    def test_self_recursion_rejected(self):
        with pytest.raises(ProgramValidationError):
            Program([simple_method("a", calls=["a"])], "a").validate()

    def test_diamond_call_graph_accepted(self):
        a = simple_method("a", calls=["b"])
        b = Method(
            "b",
            [block("b0", Goto("b1"), calls=["c", "d"]),
             block("b1", Return())],
            "b0",
        )
        c = simple_method("c", calls=["d"])
        d = simple_method("d")
        Program([a, b, c, d], "a").validate()

    def test_missing_entry_method(self):
        with pytest.raises(ProgramValidationError):
            Program([simple_method("m")], "other")

    def test_duplicate_method_rejected(self):
        with pytest.raises(ProgramValidationError):
            Program([simple_method("m"), simple_method("m")], "m")


class TestLayout:
    def test_pcs_assigned_sequentially(self):
        program = Program([simple_method("m")], "m").validated()
        b0 = program.methods["m"].blocks["b0"]
        b1 = program.methods["m"].blocks["b1"]
        assert b0.base_pc == Program.CODE_BASE
        assert b1.base_pc == b0.base_pc + b0.n_instructions * INSTRUCTION_BYTES
        assert b0.branch_pc == (
            b0.base_pc + (b0.n_instructions - 1) * INSTRUCTION_BYTES
        )

    def test_listing_gets_pcs_after_layout(self):
        program = Program([simple_method("m")], "m").validated()
        listing = program.methods["m"].blocks["b0"].instructions()
        assert listing[0].pc == Program.CODE_BASE
        assert all(ins.pc is not None for ins in listing)

    def test_code_footprint(self):
        method = simple_method("m")
        assert method.code_footprint == (
            method.static_instruction_count * INSTRUCTION_BYTES
        )

    def test_validated_is_fluent(self):
        program = Program([simple_method("m")], "m")
        assert program.validated() is program
        assert program.is_laid_out
