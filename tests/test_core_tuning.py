"""Unit tests for tuning state machines and selection rules."""

import pytest

from repro.core.tuning import (
    HotspotTuningState,
    TuningOutcome,
    TuningPhase,
    choose_best,
    choose_best_robust,
    make_config_list,
    median_ipc,
    verification_says_demote,
)


def outcome(config, ipc, energy=1.0):
    return TuningOutcome(config, ipc, energy, 1000)


class TestConfigList:
    def test_single_cu(self):
        assert make_config_list([4]) == [(0,), (1,), (2,), (3,)]

    def test_two_cus_cartesian(self):
        configs = make_config_list([2, 2])
        assert configs == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_starts_at_all_maximum(self):
        assert make_config_list([4, 4])[0] == (0, 0)

    def test_prediction_hoisted_after_reference(self):
        configs = make_config_list([4], predicted_first=(2,))
        assert configs[0] == (0,)
        assert configs[1] == (2,)
        assert len(configs) == 4

    def test_prediction_equal_to_reference(self):
        configs = make_config_list([4], predicted_first=(0,))
        assert configs[0] == (0,)
        assert len(configs) == 4

    def test_unknown_prediction_ignored(self):
        configs = make_config_list([2], predicted_first=(9,))
        assert configs == [(0,), (1,)]


class TestSelection:
    def test_choose_best_prefers_lowest_energy_qualifier(self):
        outcomes = [
            outcome((0,), ipc=2.0, energy=1.0),
            outcome((1,), ipc=1.99, energy=0.5),
            outcome((2,), ipc=1.5, energy=0.1),  # too slow
        ]
        best = choose_best(outcomes, 2.0, 0.02)
        assert best.config == (1,)

    def test_choose_best_empty(self):
        assert choose_best([], 1.0, 0.02) is None

    def test_choose_best_falls_back_to_fastest(self):
        outcomes = [outcome((0,), ipc=1.0, energy=1.0)]
        best = choose_best(outcomes, reference_ipc=99.0,
                           performance_threshold=0.02)
        assert best.config == (0,)

    def test_median_ipc(self):
        outcomes = [outcome((i,), ipc=v) for i, v in
                    enumerate([1.0, 3.0, 2.0])]
        assert median_ipc(outcomes) == 2.0
        outcomes.append(outcome((3,), ipc=4.0))
        assert median_ipc(outcomes) == 2.5

    def test_robust_selection_rejects_outlier_slow_config(self):
        outcomes = [
            outcome((0,), ipc=2.00, energy=1.0),
            outcome((1,), ipc=2.02, energy=0.6),
            outcome((2,), ipc=1.99, energy=0.3),
            outcome((3,), ipc=1.20, energy=0.1),  # thrashing
        ]
        best = choose_best_robust(outcomes, 0.02)
        assert best.config == (2,)

    def test_robust_selection_tolerates_noise(self):
        # All configs within noise of each other: smallest energy wins.
        outcomes = [
            outcome((0,), ipc=2.00, energy=1.0),
            outcome((1,), ipc=1.97, energy=0.6),
            outcome((2,), ipc=2.03, energy=0.3),
            outcome((3,), ipc=1.98, energy=0.1),
        ]
        best = choose_best_robust(outcomes, 0.05)
        assert best.config == (3,)


class TestVerificationVerdict:
    def test_clear_loss_demotes(self):
        chosen = [1.5, 1.52, 1.48, 1.51, 1.49]
        maximum = [2.0, 2.02, 1.98, 2.01, 1.99]
        assert verification_says_demote(chosen, maximum, 0.02)

    def test_noise_within_stderr_tolerated(self):
        chosen = [1.9, 2.1, 1.95, 2.05, 2.0]
        maximum = [2.0, 2.05, 1.95, 2.1, 1.95]
        assert not verification_says_demote(chosen, maximum, 0.02)

    def test_empty_samples_safe(self):
        assert not verification_says_demote([], [1.0], 0.02)


class TestHotspotTuningState:
    def make(self, n=4):
        return HotspotTuningState("hs", ("L1D",), make_config_list([n]))

    def test_walks_config_list(self):
        state = self.make()
        assert state.current_trial == (0,)
        state.record(outcome((0,), 2.0, 1.0), 0.02)
        assert state.current_trial == (1,)

    def test_completes_after_all_configs(self):
        state = self.make(2)
        assert not state.record(outcome((0,), 2.0, 1.0), 0.02)
        assert state.record(outcome((1,), 2.0, 0.5), 0.02)
        assert state.phase is TuningPhase.CONFIGURED
        assert state.best.config == (1,)
        assert state.verify_pending  # A/B check scheduled

    def test_early_exit_on_degradation(self):
        state = self.make(4)
        state.record(outcome((0,), 2.0, 1.0), 0.02)
        done = state.record(outcome((1,), 1.0, 0.5), 0.02)  # -50%
        assert done
        assert state.aborted_early
        assert state.best.config == (0,)

    def test_no_early_exit_on_first_trial(self):
        state = self.make(4)
        done = state.record(outcome((0,), 0.5, 1.0), 0.02)
        assert not done

    def test_reference_ipc_is_first_measurement(self):
        state = self.make(2)
        state.record(outcome((0,), 1.7, 1.0), 0.02)
        assert state.reference_ipc == 1.7

    def test_record_outside_tuning_rejected(self):
        state = self.make(1)
        state.record(outcome((0,), 2.0, 1.0), 0.02)
        with pytest.raises(RuntimeError):
            state.record(outcome((0,), 2.0, 1.0), 0.02)

    def test_restart_resets_for_retune(self):
        state = self.make(2)
        state.record(outcome((0,), 2.0, 1.0), 0.02)
        state.record(outcome((1,), 2.0, 0.5), 0.02)
        state.restart()
        assert state.phase is TuningPhase.TUNING
        assert state.current_trial == (0,)
        assert state.tuning_rounds == 2
        assert state.best is None
        assert not state.verify_pending

    def test_drift_detection(self):
        state = self.make(1)
        state.record(outcome((0,), 2.0, 1.0), 0.02)
        state.verify_pending = False
        for _ in range(10):
            state.observe_configured_ipc(1.0)
        assert state.drift_exceeds(0.4)
        assert not state.drift_exceeds(0.9)

    def test_demote_steps_deepest_cu(self):
        state = HotspotTuningState(
            "hs", ("L2", "L1D"), make_config_list([4, 4])
        )
        for config in state.config_list:
            if state.phase is not TuningPhase.TUNING:
                break
            state.record(outcome(config, 2.0, 1.0), 0.5)
        state.best = TuningOutcome((1, 3), 2.0, 0.5, 1000)
        assert state.demote()
        assert state.best.config == (1, 2)
        assert state.demotions == 1

    def test_demote_at_maximum_refuses(self):
        state = self.make(1)
        state.record(outcome((0,), 2.0, 1.0), 0.02)
        assert not state.demote()


class TestVerificationProtocol:
    def make_configured(self):
        state = HotspotTuningState("hs", ("L1D",), make_config_list([2]))
        state.record(outcome((0,), 2.0, 1.0), 0.5)
        state.record(outcome((1,), 2.0, 0.5), 0.5)
        assert state.best.config == (1,)
        assert state.verify_pending
        return state

    def test_verification_passes_good_config(self):
        state = self.make_configured()
        k = 3
        for _ in range(k):
            assert state.verification_target() == (1,)
            result = state.record_verification(2.0, k, 0.02)
        assert result == "continue"  # moved to max stage
        for _ in range(k):
            assert state.verification_target() == (0,)
            result = state.record_verification(2.0, k, 0.02)
        assert result == "verified"
        assert not state.verify_pending
        assert state.verify_passes == 1

    def test_verification_demotes_bad_config(self):
        state = self.make_configured()
        k = 3
        for _ in range(k):
            state.record_verification(1.0, k, 0.02)  # chosen slow
        result = "continue"
        for _ in range(k):
            result = state.record_verification(2.0, k, 0.02)  # max fast
        assert result == "demoted"
        assert state.best.config == (0,)
        # Demoted to maximum: next verification short-circuits.
        state.record_verification(2.0, k, 0.02)
        assert not state.verify_pending

    def test_max_choice_skips_comparison(self):
        state = HotspotTuningState("hs", ("L1D",), make_config_list([2]))
        state.record(outcome((0,), 2.0, 0.1), 0.5)
        state.record(outcome((1,), 1.0, 0.5), 0.5)
        assert state.best.config == (0,)  # max wins on IPC floor
        result = "continue"
        for _ in range(3):
            result = state.record_verification(2.0, 3, 0.02)
        assert result == "verified"
        assert state.verify_passes >= 1
