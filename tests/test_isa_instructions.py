"""Unit tests for the instruction layer."""

import pytest

from repro.isa.instructions import (
    DEFAULT_COMPUTE_MIX,
    Instruction,
    InstructionMix,
    Opcode,
    synthesize_instructions,
)


class TestOpcode:
    def test_memory_classification(self):
        assert Opcode.LOAD.is_memory
        assert Opcode.STORE.is_memory
        assert not Opcode.ALU.is_memory

    def test_control_classification(self):
        for op in (Opcode.BRANCH, Opcode.JUMP, Opcode.CALL, Opcode.RET):
            assert op.is_control
        assert not Opcode.LOAD.is_control
        assert not Opcode.FPALU.is_control


class TestInstruction:
    def test_with_pc_preserves_fields(self):
        instr = Instruction(Opcode.LOAD, ("r1", "r2"))
        placed = instr.with_pc(0x1000)
        assert placed.pc == 0x1000
        assert placed.opcode is Opcode.LOAD
        assert placed.operands == ("r1", "r2")
        assert instr.pc is None  # original untouched (frozen)

    def test_str_with_and_without_pc(self):
        bare = Instruction(Opcode.ALU)
        assert str(bare) == "alu"
        placed = Instruction(Opcode.LOAD, ("r1",), pc=0x10)
        assert "0x" in str(placed)
        assert "load r1" in str(placed)


class TestInstructionMix:
    def test_derived_counts(self):
        mix = InstructionMix(total=20, loads=4, stores=2, branches=1)
        assert mix.non_compute == 7
        assert mix.compute == 13
        assert mix.memory_refs == 6

    def test_rejects_negative_total(self):
        with pytest.raises(ValueError):
            InstructionMix(total=-1)

    def test_rejects_negative_loads(self):
        with pytest.raises(ValueError):
            InstructionMix(total=10, loads=-2)

    def test_rejects_overfull_block(self):
        with pytest.raises(ValueError):
            InstructionMix(total=3, loads=2, stores=2)

    def test_zero_block_is_legal(self):
        mix = InstructionMix(total=0)
        assert mix.compute == 0


class TestSynthesize:
    def test_total_count_matches(self):
        mix = InstructionMix(total=37, loads=5, stores=3, branches=1, calls=1)
        listing = synthesize_instructions(mix)
        assert len(listing) == 37

    def test_category_counts_match(self):
        mix = InstructionMix(total=50, loads=7, stores=4, branches=1, calls=2)
        listing = synthesize_instructions(mix)
        by_op = {}
        for instr in listing:
            by_op[instr.opcode] = by_op.get(instr.opcode, 0) + 1
        assert by_op[Opcode.LOAD] == 7
        assert by_op[Opcode.STORE] == 4
        assert by_op[Opcode.BRANCH] == 1
        assert by_op[Opcode.CALL] == 2

    def test_compute_apportionment_sums_exactly(self):
        mix = InstructionMix(total=100, loads=10, stores=5, branches=1)
        listing = synthesize_instructions(mix)
        compute_ops = {op for op, _ in DEFAULT_COMPUTE_MIX}
        n_compute = sum(1 for i in listing if i.opcode in compute_ops)
        assert n_compute == mix.compute

    def test_memory_interleaved_not_clustered(self):
        mix = InstructionMix(total=60, loads=10, branches=1)
        listing = synthesize_instructions(mix)
        load_positions = [
            i for i, ins in enumerate(listing)
            if ins.opcode is Opcode.LOAD
        ]
        # Loads should span the body, not sit in one run at the start.
        assert load_positions[-1] - load_positions[0] > len(listing) // 3

    def test_branch_is_last(self):
        mix = InstructionMix(total=12, loads=2, branches=1)
        listing = synthesize_instructions(mix)
        assert listing[-1].opcode is Opcode.BRANCH

    def test_pure_memory_block(self):
        mix = InstructionMix(total=4, loads=2, stores=2)
        listing = synthesize_instructions(mix)
        assert len(listing) == 4
        assert all(i.opcode.is_memory for i in listing)

    def test_empty_block(self):
        assert synthesize_instructions(InstructionMix(total=0)) == []
