"""Tests for sim configuration, metrics, driver and experiment layers."""

import pytest

from repro.scaling import STRUCTURE_SCALE
from repro.sim.config import (
    ExperimentConfig,
    MachineConfig,
    ScaledParameters,
    build_machine,
)
from repro.sim.driver import SCHEMES, make_policy, run_benchmark
from repro.sim.experiment import (
    cached_run,
    clear_cache,
    compare_schemes,
)
from repro.sim.metrics import (
    coefficient_of_variation,
    geometric_mean,
    mean,
    percent,
    population_std,
    running_cov,
    safe_ratio,
)
from repro.workloads.specjvm import build_benchmark

KB = 1024


class TestScaledParameters:
    def test_default_scale(self):
        params = ScaledParameters()
        assert params.l1d_reconfig_interval == 1_000
        assert params.l2_reconfig_interval == 10_000
        assert params.bbv_sampling_interval == 10_000
        assert params.l1d_hotspot_min == 500
        assert params.l1d_hotspot_max == 5_000
        assert params.l2_hotspot_min == 5_000

    def test_unit_scale_recovers_paper_values(self):
        params = ScaledParameters(scale=1.0)
        assert params.l1d_reconfig_interval == 100_000
        assert params.l2_reconfig_interval == 1_000_000
        assert params.l1d_hotspot_min == 50_000

    def test_scaled_never_below_one(self):
        params = ScaledParameters(scale=1e-9)
        assert params.scaled(100) == 1


class TestBuildMachine:
    def test_cache_geometry(self, machine):
        assert machine.hierarchy.l1d.size == 64 * KB // STRUCTURE_SCALE
        assert machine.hierarchy.l2.size == 1024 * KB // STRUCTURE_SCALE
        assert machine.hierarchy.l1d.associativity == 2
        assert machine.hierarchy.l2.associativity == 4

    def test_cu_intervals_scaled(self, machine):
        assert machine.cus["L1D"].reconfiguration_interval == 1_000
        assert machine.cus["L2"].reconfiguration_interval == 10_000

    def test_flush_cost_scaled(self, machine):
        # 4.0 cycles/line at paper scale -> 0.04 at 1/100.
        assert machine.timing.params.flush_cycles_per_line == (
            pytest.approx(0.04)
        )

    def test_energy_models_match_sizes(self, machine):
        assert (
            machine.energy.l1d.current_size == machine.hierarchy.l1d.size
        )

    def test_fresh_machines_are_independent(self):
        a = build_machine(MachineConfig())
        b = build_machine(MachineConfig())
        a.request_reconfiguration("L1D", 2)
        assert b.cus["L1D"].current_index == 0


class TestMetrics:
    def test_mean_and_std(self):
        assert mean([1, 2, 3]) == 2
        assert mean([]) == 0.0
        assert population_std([2, 2, 2]) == 0.0
        assert population_std([1, 3]) == 1.0

    def test_cov(self):
        assert coefficient_of_variation([2, 2]) == 0.0
        assert coefficient_of_variation([5]) is None
        assert coefficient_of_variation([-1, 1]) is None

    def test_running_cov_matches_batch(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert running_cov(values) == pytest.approx(
            population_std(values) / mean(values)
        )

    def test_geometric_mean(self):
        assert geometric_mean([2, 8]) == pytest.approx(4.0)
        with pytest.raises(ValueError):
            geometric_mean([1, 0])

    def test_percent_format(self):
        assert percent(0.473) == "47.3%"

    def test_safe_ratio(self):
        assert safe_ratio(1, 0, default=-1) == -1
        assert safe_ratio(6, 3) == 2


class TestDriver:
    def test_make_policy_names(self):
        config = ExperimentConfig()
        for scheme in SCHEMES:
            policy = make_policy(scheme, config)
            assert policy.name in ("static", "bbv", "hotspot")
        with pytest.raises(ValueError):
            make_policy("oracle", config)

    def test_run_benchmark_result_fields(self, small_config):
        result = run_benchmark("db", "hotspot", small_config)
        assert result.benchmark == "db"
        assert result.scheme == "hotspot"
        assert result.instructions >= small_config.max_instructions
        assert result.ipc > 0
        assert result.l1d_energy_nj > 0
        assert result.hotspot_stats is not None
        assert result.bbv_stats is None
        assert result.n_hotspots > 0
        assert 0 < result.hotspot_coverage <= 1.0

    def test_baseline_has_no_policy_stats(self, small_config):
        result = run_benchmark("db", "baseline", small_config)
        assert result.hotspot_stats is None
        assert result.bbv_stats is None
        assert result.applied_reconfigurations == {"L1D": 0, "L2": 0}

    def test_bbv_run_has_bbv_stats(self, small_config):
        result = run_benchmark("db", "bbv", small_config)
        assert result.bbv_stats is not None
        assert result.bbv_stats.intervals_total >= 19

    def test_prebuilt_benchmark_accepted(self, small_config):
        built = build_benchmark("jess")
        result = run_benchmark(built, "baseline", small_config)
        assert result.benchmark == "jess"

    def test_identification_latency_bounded(self, small_config):
        result = run_benchmark("db", "hotspot", small_config)
        assert 0.0 <= result.identification_latency <= 1.0


class TestExperiment:
    def test_compare_schemes_runs_all_three(self, small_config):
        clear_cache()
        comparison = compare_schemes("db", small_config)
        assert comparison.baseline.scheme == "static"
        assert comparison.bbv.scheme == "bbv"
        assert comparison.hotspot.scheme == "hotspot"

    def test_cache_hits_same_object(self, small_config):
        clear_cache()
        first = cached_run("db", "baseline", small_config)
        second = cached_run("db", "baseline", small_config)
        assert first is second

    def test_cache_respects_config_fingerprint(self, small_config):
        clear_cache()
        first = cached_run("db", "baseline", small_config)
        other_config = ExperimentConfig(max_instructions=250_000)
        second = cached_run("db", "baseline", other_config)
        assert first is not second

    def test_energy_reduction_and_slowdown(self, small_config):
        clear_cache()
        comparison = compare_schemes("db", small_config)
        for scheme in ("bbv", "hotspot"):
            for cache in ("L1D", "L2"):
                value = comparison.energy_reduction(scheme, cache)
                assert -1.0 < value < 1.0
            assert -0.5 < comparison.slowdown(scheme) < 1.0
        with pytest.raises(ValueError):
            comparison.energy_reduction("hotspot", "L3")
