"""Tests for DO-database persistence, warm-started tuning, the EDP
objective, and the resize-policy option."""

import pytest

from repro.core.policy import HotspotACEPolicy
from repro.core.tuning import (
    TuningConfig,
    TuningOutcome,
    choose_best_robust,
    selection_key,
)
from repro.sim.config import ExperimentConfig, MachineConfig, build_machine
from repro.sim.driver import run_benchmark
from repro.uarch.cache import Cache
from repro.vm.hotspot import DODatabase
from repro.workloads.specjvm import build_benchmark

KB = 1024


class TestDatabasePersistence:
    def run_once(self, config):
        policy = HotspotACEPolicy(tuning=config.tuning)
        built = build_benchmark("db")
        result = run_benchmark(built, "hotspot", config, policy=policy)
        return result, policy

    def capture_database(self, config):
        from repro.vm.vm import VMConfig, VirtualMachine

        built = build_benchmark("db")
        vm = VirtualMachine(
            built.program,
            build_machine(config.machine),
            policy=HotspotACEPolicy(tuning=config.tuning),
            config=VMConfig(hot_threshold=config.hot_threshold),
            thread_entries=built.thread_entries,
        )
        vm.run(config.max_instructions)
        return vm.database

    def test_round_trip(self, tmp_path):
        config = ExperimentConfig(max_instructions=300_000)
        database = self.capture_database(config)
        path = str(tmp_path / "do.json")
        database.save(path)
        loaded = DODatabase.load(path)
        assert set(loaded.hotspots) == set(database.hotspots)
        for name, info in loaded.hotspots.items():
            assert info.mean_size == pytest.approx(
                database.hotspots[name].mean_size
            )
            # Per-run metrics restart.
            assert info.profile.pre_hot_instructions == 0
            assert info.profile.invocations == 0

    def test_preloaded_run_has_zero_identification_latency(self):
        config = ExperimentConfig(max_instructions=300_000)
        database = self.capture_database(config)
        preload = DODatabase.from_dict(database.to_dict())
        result = run_benchmark(
            build_benchmark("db"), "hotspot", config,
            preload_database=preload,
        )
        assert result.identification_latency == 0.0
        assert result.n_hotspots >= len(database.hotspots)


class TestWarmStart:
    def test_warm_start_skips_tuning(self):
        config = ExperimentConfig(max_instructions=400_000)
        first = HotspotACEPolicy(tuning=config.tuning)
        run_benchmark(build_benchmark("db"), "hotspot", config,
                      policy=first)
        chosen = first.chosen_configs()
        assert chosen

        second = HotspotACEPolicy(
            tuning=config.tuning, warm_start=chosen
        )
        run_benchmark(build_benchmark("db"), "hotspot", config,
                      policy=second)
        assert second.warm_started >= 1
        # Warm-started hotspots spend no tuning trials.
        warm_trials = sum(second.trial_count.values())
        cold_trials = sum(first.trial_count.values())
        assert warm_trials < cold_trials

    def test_warm_start_mismatched_width_ignored(self):
        config = ExperimentConfig(max_instructions=300_000)
        policy = HotspotACEPolicy(
            tuning=config.tuning,
            warm_start={"mid0": (1, 2, 3)},  # wrong CU-subset width
        )
        run_benchmark(build_benchmark("db"), "hotspot", config,
                      policy=policy)
        assert policy.warm_started == 0

    def test_inherited_config_is_verified(self):
        config = ExperimentConfig(max_instructions=400_000)
        first = HotspotACEPolicy(tuning=config.tuning)
        run_benchmark(build_benchmark("db"), "hotspot", config,
                      policy=first)
        chosen = first.chosen_configs()
        second = HotspotACEPolicy(tuning=config.tuning,
                                  warm_start=chosen)
        run_benchmark(build_benchmark("db"), "hotspot", config,
                      policy=second)
        # After the run, warm-started states have been through (or are
        # still in) verification — none are left unverified-and-untouched.
        for name in chosen:
            state = second.states.get(name)
            if state is not None and state.best is not None:
                assert (
                    state.verify_passes >= 1
                    or state.verify_pending
                    or state.demotions > 0
                    or state.tuning_rounds > 1
                )


class TestObjectives:
    def test_selection_key(self):
        fast = TuningOutcome((0,), 2.0, 1.0, 1000)
        slow = TuningOutcome((1,), 1.0, 0.9, 1000)
        assert selection_key(fast, "energy") > selection_key(slow, "energy")
        # EDP penalises the slow config despite its lower energy.
        assert selection_key(fast, "edp") < selection_key(slow, "edp")

    def test_choose_best_robust_edp(self):
        outcomes = [
            TuningOutcome((0,), 2.00, 1.0, 1000),
            TuningOutcome((1,), 1.99, 0.9, 1000),
            TuningOutcome((2,), 1.98, 0.95, 1000),
        ]
        energy_best = choose_best_robust(outcomes, 0.05, "energy")
        edp_best = choose_best_robust(outcomes, 0.05, "edp")
        assert energy_best.config == (1,)
        assert edp_best.config == (1,)  # 0.9/1.99 still lowest EDP

    def test_objective_validation(self):
        with pytest.raises(ValueError):
            TuningConfig(objective="speed")

    def test_edp_run_end_to_end(self):
        config = ExperimentConfig(
            tuning=TuningConfig(objective="edp"),
            max_instructions=300_000,
        )
        result = run_benchmark(build_benchmark("db"), "hotspot", config)
        assert result.hotspot_stats.tuned_hotspots >= 1


class TestResizePolicy:
    def test_flush_policy_drops_everything(self):
        cache = Cache(
            "c", 8 * KB, 64, 2, sizes=(8 * KB, 4 * KB),
            resize_policy="flush",
        )
        cache.access(0x0)  # survives a selective shrink, not a flush
        cache.resize(4 * KB)
        assert not cache.contains(0x0)

    def test_selective_policy_keeps_surviving_lines(self):
        cache = Cache(
            "c", 8 * KB, 64, 2, sizes=(8 * KB, 4 * KB),
            resize_policy="selective",
        )
        cache.access(0x0)
        cache.resize(4 * KB)
        assert cache.contains(0x0)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            Cache("c", 1 * KB, 64, 2, resize_policy="magic")

    def test_machine_config_carries_policy(self):
        machine = build_machine(MachineConfig(resize_policy="flush"))
        assert machine.hierarchy.l1d.resize_policy == "flush"
        assert machine.hierarchy.l2.resize_policy == "flush"
