"""Fault-injection subsystem: determinism, degradation, drift recovery.

Covers the `repro.faults` contract (pure-function draws, spec parsing,
pickling), the engine's graceful-degradation paths under injected faults
(failure policies, per-cell outcomes, store quarantine), the machine's
injected reconfiguration denials, the null-injector overhead contract
(no plan ⇒ bit-identical results), and the drift-recovery acceptance
test: a forced mid-run behaviour shift must drive the sampling code
through ``sampling_retune`` and re-pin the post-shift-optimal
configuration.
"""

from __future__ import annotations

import pickle
import threading

import pytest

from repro.faults import PROBABILITY_SITES, FaultPlan
from repro.obs import SAMPLING_RETUNE, TIMEOUT_DISABLED, Telemetry
from repro.sim.config import ExperimentConfig, MachineConfig, build_machine
from repro.sim.driver import RunSpec, execute
from repro.sim.engine import (
    BatchExecutionError,
    CellExecutionError,
    Engine,
)
from repro.sim.store import ResultStore
from tests.conftest import make_loop_program

BUDGET = 60_000


@pytest.fixture
def small_config():
    return ExperimentConfig(max_instructions=BUDGET)


# ---------------------------------------------------------------------------
# FaultPlan: determinism, serialisation, validation
# ---------------------------------------------------------------------------


class TestFaultPlan:
    def test_default_plan_injects_nothing(self):
        plan = FaultPlan()
        for site in PROBABILITY_SITES:
            assert not plan.decide(site, ("db", "hotspot", 1))
        assert not plan.perturbs_simulation
        assert not plan.perturbs_profiling
        assert plan.injected == {}

    def test_decisions_are_pure_functions_of_seed_site_key(self):
        a = FaultPlan(seed=7, cell_exception=0.5)
        b = FaultPlan(seed=7, cell_exception=0.5)
        keys = [("db", s, n) for s in ("baseline", "hotspot") for n in range(50)]
        assert [a.decide("cell_exception", k) for k in keys] == [
            b.decide("cell_exception", k) for k in keys
        ]
        # Different seed ⇒ (almost surely) a different schedule.
        c = FaultPlan(seed=8, cell_exception=0.5)
        assert [a._uniform("cell_exception", k) for k in keys] != [
            c._uniform("cell_exception", k) for k in keys
        ]

    def test_decisions_are_order_independent(self):
        plan = FaultPlan(seed=3, cell_timeout=0.4)
        keys = [("db", "hotspot", n) for n in range(20)]
        forward = {k: plan._uniform("cell_timeout", k) for k in keys}
        backward = {
            k: plan._uniform("cell_timeout", k) for k in reversed(keys)
        }
        assert forward == backward

    def test_pickled_plan_decides_identically(self):
        plan = FaultPlan(seed=11, worker_crash=0.3, profile_noise=0.2)
        clone = pickle.loads(pickle.dumps(plan))
        keys = [("jess", "bbv", n) for n in range(30)]
        assert [plan._uniform("worker_crash", k) for k in keys] == [
            clone._uniform("worker_crash", k) for k in keys
        ]

    def test_probabilities_scale_fire_rate(self):
        plan = FaultPlan(seed=5, cell_exception=0.25)
        fired = sum(
            plan.decide("cell_exception", ("db", "hotspot", n))
            for n in range(2000)
        )
        assert 0.18 < fired / 2000 < 0.32
        assert plan.injected["cell_exception"] == fired

    def test_spec_round_trip(self):
        plan = FaultPlan(
            seed=42, worker_crash=0.2, cell_timeout=0.1, drift_at=100_000
        )
        assert FaultPlan.from_spec(plan.to_spec()) == plan

    def test_spec_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown fault-plan field"):
            FaultPlan.from_spec("seed=1,bogus=0.5")
        with pytest.raises(ValueError, match="name=value"):
            FaultPlan.from_spec("worker_crash")

    def test_validation_rejects_bad_probabilities(self):
        with pytest.raises(ValueError):
            FaultPlan(worker_crash=1.5)
        with pytest.raises(ValueError):
            FaultPlan(profile_noise=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(drift_ipc_factor=0.0)

    def test_perturbs_simulation_gates(self):
        assert FaultPlan(profile_noise=0.1).perturbs_simulation
        assert FaultPlan(drift_at=1000).perturbs_simulation
        assert FaultPlan(reconfig_deny=0.5).perturbs_simulation
        # Engine-only sites leave simulation results untouched.
        engine_only = FaultPlan(
            worker_crash=0.5, cell_exception=0.5,
            cell_timeout=0.5, store_corrupt=0.5,
        )
        assert not engine_only.perturbs_simulation

    def test_noise_perturbation_is_deterministic_and_multiplicative(self):
        plan = FaultPlan(seed=9, profile_noise=0.25)
        first = plan.perturb_measurement("work", (1,), 0.8, 100.0, 0, 3)
        second = plan.perturb_measurement("work", (1,), 0.8, 100.0, 0, 3)
        assert first == second
        assert first[0] > 0 and first[1] > 0
        other = plan.perturb_measurement("work", (1,), 0.8, 100.0, 0, 4)
        assert other != first

    def test_drift_penalises_downsized_configs(self):
        plan = FaultPlan(
            seed=1, drift_at=1000, drift_ipc_factor=0.5,
            drift_config_penalty=0.3,
        )
        # Before the shift: untouched.
        assert plan.perturb_measurement("work", (2,), 1.0, 10.0, 999, 0) == (
            1.0, 10.0
        )
        max_ipc, max_energy = plan.perturb_measurement(
            "work", (0,), 1.0, 10.0, 1000, 0
        )
        small_ipc, small_energy = plan.perturb_measurement(
            "work", (3,), 1.0, 10.0, 1000, 0
        )
        assert max_ipc == pytest.approx(0.5)
        assert max_energy == pytest.approx(10.0)
        assert small_ipc < max_ipc
        assert small_energy > max_energy


# ---------------------------------------------------------------------------
# Engine degradation: failure policies, outcomes, retry accounting
# ---------------------------------------------------------------------------


class TestFailurePolicies:
    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError, match="failure_policy"):
            Engine(failure_policy="ignore")

    def test_raise_policy_aborts_like_before(self, small_config):
        plan = FaultPlan(seed=0, cell_exception=1.0)
        engine = Engine(
            memory_cache={}, fault_plan=plan, max_retries=1
        )
        with pytest.raises(CellExecutionError):
            engine.run([RunSpec("db", "baseline", small_config)])

    def test_skip_policy_returns_none_slots(self, small_config):
        # Doom exactly the cells whose every attempt draws a fault.
        plan = FaultPlan(seed=0, cell_exception=1.0)
        engine = Engine(
            memory_cache={},
            fault_plan=plan,
            max_retries=1,
            failure_policy="skip",
        )
        batch = engine.run(
            [
                RunSpec("db", "baseline", small_config),
                RunSpec("jess", "baseline", small_config),
            ]
        )
        assert batch.degraded
        assert batch.results == [None, None]
        assert [o.status for o in batch] == ["failed", "failed"]
        assert all("InjectedFault" in o.error for o in batch.outcomes)
        assert all(o.attempts == 2 for o in batch.outcomes)
        assert engine.stats.failures == 2
        assert engine.stats.retries == 2

    def test_partial_policy_serves_survivors(self, small_config):
        # Fire on some (benchmark, scheme, attempt) keys but not others:
        # pick a seed/probability where db survives and jess fails.
        plan = None
        for seed in range(200):
            candidate = FaultPlan(seed=seed, cell_exception=0.6)
            db_ok = not any(
                candidate._uniform(
                    "cell_exception", ("db", "baseline", n)
                ) < 0.6
                for n in (1, 2)
            )
            jess_doomed = all(
                candidate._uniform(
                    "cell_exception", ("jess", "baseline", n)
                ) < 0.6
                for n in (1, 2)
            )
            if db_ok and jess_doomed:
                plan = FaultPlan(seed=seed, cell_exception=0.6)
                break
        assert plan is not None, "no seed under 200 split the two cells"
        engine = Engine(
            memory_cache={},
            fault_plan=plan,
            max_retries=1,
            failure_policy="partial",
        )
        batch = engine.run(
            [
                RunSpec("db", "baseline", small_config),
                RunSpec("jess", "baseline", small_config),
            ]
        )
        assert batch.degraded
        assert batch.outcomes[0].ok
        assert batch.outcomes[0].result is not None
        assert batch.outcomes[1].status == "failed"
        assert len(batch.ok) == 1 and len(batch.failures) == 1
        assert batch.counts() == {"ok": 1, "failed": 1}

    def test_partial_policy_raises_when_all_fail(self, small_config):
        plan = FaultPlan(seed=0, cell_exception=1.0)
        engine = Engine(
            memory_cache={},
            fault_plan=plan,
            max_retries=0,
            failure_policy="partial",
        )
        with pytest.raises(BatchExecutionError) as excinfo:
            engine.run([RunSpec("db", "baseline", small_config)])
        assert len(excinfo.value.batch.failures) == 1

    def test_injected_timeout_counts_and_statuses(self, small_config):
        plan = FaultPlan(seed=0, cell_timeout=1.0)
        engine = Engine(
            memory_cache={},
            fault_plan=plan,
            max_retries=1,
            failure_policy="skip",
        )
        batch = engine.run([RunSpec("db", "baseline", small_config)])
        assert batch.outcomes[0].status == "timeout"
        assert engine.stats.timeouts == 2  # both attempts timed out

    def test_failed_leader_fails_duplicates_too(self, small_config):
        plan = FaultPlan(seed=0, cell_exception=1.0)
        engine = Engine(
            memory_cache={},
            fault_plan=plan,
            max_retries=0,
            failure_policy="skip",
        )
        batch = engine.run(
            [
                RunSpec("db", "baseline", small_config),
                RunSpec("db", "baseline", small_config),
            ]
        )
        assert [o.status for o in batch] == ["failed", "failed"]
        assert engine.stats.deduplicated == 1
        assert engine.stats.simulations == 0

    def test_retry_recovers_single_attempt_fault(self, small_config):
        # A seed where attempt 1 faults and attempt 2 succeeds.
        seed = next(
            s
            for s in range(500)
            if FaultPlan(seed=s, cell_exception=0.5)._uniform(
                "cell_exception", ("db", "baseline", 1)
            ) < 0.5
            and FaultPlan(seed=s, cell_exception=0.5)._uniform(
                "cell_exception", ("db", "baseline", 2)
            ) >= 0.5
        )
        plan = FaultPlan(seed=seed, cell_exception=0.5)
        engine = Engine(memory_cache={}, fault_plan=plan, max_retries=1)
        batch = engine.run([RunSpec("db", "baseline", small_config)])
        assert batch.outcomes[0].ok
        assert batch.outcomes[0].attempts == 2
        assert engine.stats.retries == 1

    def test_degradation_events_emitted(self, small_config):
        telemetry = Telemetry()
        plan = FaultPlan(seed=0, cell_exception=1.0)
        engine = Engine(
            memory_cache={},
            fault_plan=plan,
            max_retries=0,
            failure_policy="skip",
            telemetry=telemetry,
        )
        engine.run([RunSpec("db", "baseline", small_config)])
        counts = telemetry.log.counts()
        assert counts.get("cell_failed") == 1
        assert counts.get("batch_degraded") == 1


# ---------------------------------------------------------------------------
# Caching under injection
# ---------------------------------------------------------------------------


class TestCachingUnderInjection:
    def test_perturbing_plan_disables_both_cache_layers(
        self, tmp_path, small_config
    ):
        store = ResultStore(tmp_path)
        memory = {}
        plan = FaultPlan(seed=1, profile_noise=0.2)
        engine = Engine(store=store, memory_cache=memory, fault_plan=plan)
        spec = RunSpec("db", "hotspot", small_config)
        engine.run_one(spec)
        engine.run_one(spec)
        assert engine.stats.simulations == 2
        assert len(store) == 0
        assert memory == {}

    def test_engine_only_plan_keeps_caching(self, tmp_path, small_config):
        store = ResultStore(tmp_path)
        plan = FaultPlan(seed=1, cell_exception=0.0, worker_crash=0.0)
        engine = Engine(store=store, memory_cache={}, fault_plan=plan)
        spec = RunSpec("db", "baseline", small_config)
        engine.run_one(spec)
        engine.run_one(spec)
        assert engine.stats.simulations == 1
        assert engine.stats.memory_hits == 1
        assert len(store) == 1


# ---------------------------------------------------------------------------
# Store corruption + quarantine end-to-end
# ---------------------------------------------------------------------------


class TestStoreQuarantine:
    def test_corrupted_entry_quarantined_and_resimulated(
        self, tmp_path, small_config
    ):
        store = ResultStore(tmp_path)
        plan = FaultPlan(seed=0, store_corrupt=1.0)
        writer = Engine(store=store, memory_cache={}, fault_plan=plan)
        spec = RunSpec("db", "baseline", small_config)
        first = writer.run_one(spec)
        assert plan.injected["store_corrupt"] == 1

        # A fresh engine (no memory cache) must quarantine the damaged
        # entry, re-simulate, and leave the evidence on disk.
        reader = Engine(store=store, memory_cache={})
        second = reader.run_one(spec)
        assert second == first
        assert reader.stats.store_hits == 0
        assert reader.stats.simulations == 1
        assert store.quarantined == 1
        corrupt = store.corrupt_files()
        assert len(corrupt) == 1
        reason = store.quarantine_reason(corrupt[0])
        assert reason is not None and "unreadable entry" in reason
        # The re-simulation rewrote a valid entry (writer corrupted its
        # own put; the reader's plan-free engine wrote a clean one).
        assert len(store) == 1
        third = Engine(store=store, memory_cache={})
        assert third.run_one(spec) == first
        assert third.stats.store_hits == 1

    def test_clear_counts_corrupt_and_tmp_separately(
        self, tmp_path, small_config
    ):
        store = ResultStore(tmp_path)
        plan = FaultPlan(seed=0, store_corrupt=1.0)
        Engine(store=store, memory_cache={}, fault_plan=plan).run_one(
            RunSpec("db", "baseline", small_config)
        )
        Engine(store=store, memory_cache={}).run_one(
            RunSpec("db", "baseline", small_config)
        )
        (tmp_path / "leftoverXYZ.tmp").write_text("debris")
        assert [p.name for p in store.stale_tmp_files()] == [
            "leftoverXYZ.tmp"
        ]
        stats = store.clear()
        assert stats.entries == 1
        assert stats.tmp == 1
        assert stats.corrupt == 1
        assert stats.total == 3
        assert list(tmp_path.iterdir()) == []


# ---------------------------------------------------------------------------
# Machine: injected reconfiguration denials
# ---------------------------------------------------------------------------


class TestReconfigDeny:
    def test_injected_denials_counted_and_deterministic(self):
        def denied_count(seed):
            machine = build_machine(MachineConfig())
            machine.fault_plan = FaultPlan(seed=seed, reconfig_deny=0.5)
            denials = 0
            for step in range(40):
                machine.instructions += 200_000
                target = (step % 3) + 1
                if not machine.request_reconfiguration("L1D", target):
                    denials += 1
            return denials, dict(machine.denied_reconfigurations)

        first, first_map = denied_count(3)
        second, second_map = denied_count(3)
        assert first == second
        assert first_map == second_map
        assert first > 0
        # Denials are injected on top of the guard, never removing them:
        # with no plan the same schedule is all-granted (interval 200k
        # steps keep the guard satisfied).
        machine = build_machine(MachineConfig())
        for step in range(40):
            machine.instructions += 200_000
            assert machine.request_reconfiguration("L1D", (step % 3) + 1)


# ---------------------------------------------------------------------------
# Null-injector overhead contract
# ---------------------------------------------------------------------------


class TestNullInjector:
    def test_no_plan_and_zero_plan_are_bit_identical(self, small_config):
        spec = RunSpec("db", "hotspot", small_config)
        bare = execute(spec)
        zero = execute(spec, fault_plan=FaultPlan())
        assert bare == zero

    def test_engine_without_plan_matches_zero_plan(self, small_config):
        spec = RunSpec("db", "hotspot", small_config)
        plain = Engine(memory_cache={}).run_one(spec)
        zeroed = Engine(
            memory_cache={}, fault_plan=FaultPlan()
        ).run_one(spec)
        assert plain == zeroed


# ---------------------------------------------------------------------------
# Drift recovery: the sampling code must notice and re-tune
# ---------------------------------------------------------------------------


class TestDriftRecovery:
    def test_forced_drift_triggers_retune_to_post_shift_optimum(self):
        from repro.core.policy import HotspotACEPolicy
        from repro.core.tuning import TuningPhase
        from repro.vm.vm import VMConfig, VirtualMachine

        drift_at = 400_000
        plan = FaultPlan(
            seed=2,
            drift_at=drift_at,
            drift_ipc_factor=0.5,
            drift_config_penalty=0.3,
        )
        telemetry = Telemetry()
        machine = build_machine(MachineConfig())
        policy = HotspotACEPolicy()
        policy.fault_plan = plan
        machine.fault_plan = plan
        program = make_loop_program(trips=30, span=256)
        vm = VirtualMachine(
            program,
            machine,
            policy=policy,
            config=VMConfig(hot_threshold=3),
            telemetry=telemetry,
        )
        vm.run(1_600_000)

        state = policy.states["work"]
        # The 256B working set makes a downsized L1D optimal pre-shift
        # (see test_core_policy), so the drift penalty genuinely changes
        # the optimum.  The sampling code must have noticed the shift...
        assert policy.retunes >= 1
        assert len(telemetry.log.by_name(SAMPLING_RETUNE)) >= 1
        retune_ts = telemetry.log.by_name(SAMPLING_RETUNE)[0].ts
        assert retune_ts >= drift_at
        # ...and re-pinned the post-shift optimum: the maximum (index-0)
        # configuration, which the drift penalty leaves untouched.
        assert state.phase is TuningPhase.CONFIGURED
        assert state.best is not None
        assert sum(state.best.config) == 0


# ---------------------------------------------------------------------------
# Satellite: unarmed-timeout visibility off the main thread
# ---------------------------------------------------------------------------


class TestUnarmedTimeout:
    def test_off_main_thread_timeout_recorded_once(self, small_config):
        telemetry = Telemetry()
        engine = Engine(
            memory_cache={},
            use_cache=False,
            cell_timeout=120.0,
            telemetry=telemetry,
        )
        spec = RunSpec("db", "baseline", small_config)
        outcome = {}

        def run():
            outcome["results"] = engine.run(
                [spec, RunSpec("jess", "baseline", small_config)]
            ).values()

        thread = threading.Thread(target=run)
        thread.start()
        thread.join(timeout=300)
        assert not thread.is_alive()
        assert all(r is not None for r in outcome["results"])
        # One counter tick per unarmed cell, but only one warning event.
        assert engine.stats.timeouts_unarmed == 2
        assert len(telemetry.log.by_name(TIMEOUT_DISABLED)) == 1

    def test_main_thread_timeout_still_armed(self, small_config):
        engine = Engine(memory_cache={}, use_cache=False, cell_timeout=120.0)
        engine.run_one(RunSpec("db", "baseline", small_config))
        assert engine.stats.timeouts_unarmed == 0
