"""Persistent-pool and warm-start behaviour of the parallel engine.

Covers the engine-scaling contract (docs/INTERNALS.md §13): the worker
pool survives across ``run`` calls, workers warm their blockjit
code cache once, the second batch re-fuses nothing, batched store writes
land, and none of it perturbs results — parallel warm-worker output is
bit-identical to serial cold output.
"""

from __future__ import annotations

import pytest

from repro.obs.events import Telemetry
from repro.sim.config import ExperimentConfig
from repro.sim.driver import RunSpec, execute
from repro.sim.engine import Engine
from repro.sim.store import ResultStore
from repro.vm import blockjit

BUDGET = 60_000


def config(budget: int = BUDGET, **kwargs) -> ExperimentConfig:
    return ExperimentConfig(max_instructions=budget, **kwargs)


def suite_cells(cfg) -> list:
    return [
        RunSpec(name, scheme, cfg)
        for name in ("db", "jess")
        for scheme in ("baseline", "hotspot")
    ]


class TestPersistentPool:
    def test_pool_survives_across_batches(self):
        telemetry = Telemetry()
        cells = suite_cells(config())
        with Engine(
            jobs=2, use_cache=False, memory_cache={}, telemetry=telemetry
        ) as engine:
            engine.run(cells)
            engine.run(cells)
        counts = telemetry.log.counts()
        assert counts.get("pool_spawned") == 1
        assert counts.get("pool_reused") == 1
        assert engine.stats.pools_spawned == 1
        assert engine.stats.pool_reuses == 1

    def test_workers_warm_once_per_pool(self):
        # Warm-up happens at pool spawn, once per worker — never per
        # batch.  (A worker ships its warm-up stats with the first chunk
        # it completes, which on a loaded box may fall in the second
        # batch, so the bound is per pool, not per run() call.)
        telemetry = Telemetry()
        cells = suite_cells(config())
        with Engine(
            jobs=2, use_cache=False, memory_cache={}, telemetry=telemetry
        ) as engine:
            engine.run(cells)
            engine.run(cells)
        warmups = telemetry.log.by_name("worker_warmup")
        assert 1 <= len(warmups) <= engine.jobs
        for event in warmups:
            assert event.args["benchmarks"] == 2
            assert event.args["errors"] == 0
            assert event.args["fused_compiles"] > 0
        assert telemetry.log.counts().get("pool_spawned") == 1

    def test_warm_parallel_results_match_serial_cold(self):
        # The whole point of the contract: worker-side memoised builds,
        # pre-decoding, and chunked submission must not perturb a single
        # bit of the results.
        cells = suite_cells(config())
        serial = Engine(jobs=1, use_cache=False, memory_cache={}).run(cells).values()
        with Engine(jobs=2, use_cache=False, memory_cache={}) as engine:
            first = engine.run(cells).values()
            second = engine.run(cells).values()  # warm pool, memoised builds
        assert first == serial
        assert second == serial

    def test_close_is_idempotent_and_pool_respawns(self):
        cells = suite_cells(config())
        engine = Engine(jobs=2, use_cache=False, memory_cache={})
        engine.run(cells)
        engine.close()
        engine.close()
        engine.run(cells)  # respawns transparently
        assert engine.stats.pools_spawned == 2
        engine.close()

    def test_batched_store_writes_land(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        cells = suite_cells(config())
        with Engine(jobs=2, store=store, memory_cache={}) as engine:
            engine.run(cells)
        assert len(store) == len(cells)
        # A fresh engine over the same store serves everything from disk.
        reader = Engine(store=store, memory_cache={})
        reader.run(cells)
        assert reader.stats.store_hits == len(cells)
        assert reader.stats.simulations == 0

    def test_chunk_size_knob_is_honoured(self):
        cells = suite_cells(config())
        with Engine(
            jobs=2, use_cache=False, memory_cache={}, chunk_size=2
        ) as engine:
            assert engine._chunks(list(range(len(cells)))) == [
                [0, 1], [2, 3]
            ]
            results = engine.run(cells).values()
        assert all(r is not None for r in results)


class TestSerialWarmStart:
    def test_second_batch_refuses_nothing(self):
        # Serial warm start rides the process-wide blockjit cache: after
        # one batch every fused closure is compiled, so a second batch on
        # a kept-alive engine must not compile again.
        engine = Engine(jobs=1, use_cache=False, memory_cache={})
        cells = suite_cells(config())
        engine.run(cells)
        compiles = blockjit.CACHE_STATS["compiles"]
        hits = blockjit.CACHE_STATS["hits"]
        engine.run(cells)
        assert blockjit.CACHE_STATS["compiles"] == compiles
        assert blockjit.CACHE_STATS["hits"] > hits


class TestCodeCacheBound:
    def test_eviction_and_recompile_stay_bit_identical(self, monkeypatch):
        # Shrink the code cache so one run constantly evicts and
        # re-fuses; the recompiled closures must reproduce the unbounded
        # run and the reference kernel exactly.
        fast = RunSpec("db", "hotspot", config(sim_kernel="fast"))
        baseline = execute(fast)
        monkeypatch.setattr(blockjit, "CACHE_LIMIT", 1)
        blockjit.clear_cache()
        evictions = blockjit.CACHE_STATS["evictions"]
        thrashed = execute(fast)
        assert blockjit.CACHE_STATS["evictions"] > evictions
        assert thrashed == baseline
        reference = execute(
            RunSpec("db", "hotspot", config(sim_kernel="reference"))
        )
        assert thrashed == reference

    def test_cache_counters_surface_in_metrics(self):
        telemetry = Telemetry()
        execute(RunSpec("db", "baseline", config()), telemetry=telemetry)
        info = blockjit.cache_info()
        for name in ("compiles", "hits", "evictions", "size", "limit"):
            gauge = telemetry.metrics.gauge(f"blockjit.cache_{name}")
            assert gauge.value == info[name]


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
