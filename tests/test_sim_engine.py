"""Engine behaviour: caching layers, fan-out parity, retries, shims.

The acceptance bar for the engine redesign: parallel execution is
bit-identical to serial, cache layers compose (memory → store →
simulate) with accurate counters, `use_cache=False` bypasses both
layers in both directions, and the old entry points (`cached_run`,
`compare_schemes`, `run_suite`, `run_benchmark`) behave as before.
"""

from __future__ import annotations

import json

import pytest

from repro.report import exhibits
from repro.sim.config import ExperimentConfig
from repro.sim.driver import RunSpec, run_benchmark
from repro.sim.engine import (
    CellExecutionError,
    CellTimeout,
    Engine,
    clear_memory_cache,
)
from repro.sim.experiment import (
    cached_run,
    clear_cache,
    compare_schemes,
    get_default_store,
    run_suite,
    set_default_store,
)
from repro.sim.store import ResultStore

BUDGET = 60_000


@pytest.fixture
def small_config():
    return ExperimentConfig(max_instructions=BUDGET)


@pytest.fixture
def isolated_store(tmp_path):
    """Point the experiment facade at a private tmpdir store."""
    previous = get_default_store()
    store = ResultStore(tmp_path / "store")
    set_default_store(store)
    clear_memory_cache()
    try:
        yield store
    finally:
        set_default_store(previous)
        clear_memory_cache()


class TestCacheLayers:
    def test_memory_then_store_then_simulate(self, tmp_path, small_config):
        store = ResultStore(tmp_path)
        spec = RunSpec("db", "baseline", small_config)

        first_engine = Engine(store=store, memory_cache={})
        result = first_engine.run_one(spec)
        assert first_engine.stats.simulations == 1
        assert len(store) == 1

        # Same engine again: memory hit, same object.
        assert first_engine.run_one(spec) is result
        assert first_engine.stats.memory_hits == 1
        assert first_engine.stats.simulations == 1

        # Fresh memory cache: store hit, equal value.
        second_engine = Engine(store=store, memory_cache={})
        restored = second_engine.run_one(spec)
        assert second_engine.stats.store_hits == 1
        assert second_engine.stats.simulations == 0
        assert restored == result

    def test_use_cache_false_bypasses_both_layers(
        self, tmp_path, small_config
    ):
        store = ResultStore(tmp_path)
        memory = {}
        engine = Engine(
            store=store, use_cache=False, memory_cache=memory
        )
        spec = RunSpec("db", "baseline", small_config)
        engine.run_one(spec)
        engine.run_one(spec)
        # Nothing read, nothing written: two real simulations.
        assert engine.stats.simulations == 2
        assert engine.stats.memory_hits == 0
        assert engine.stats.store_hits == 0
        assert len(store) == 0
        assert memory == {}

        # And a prepopulated store is not consulted either.
        Engine(store=store, memory_cache={}).run_one(spec)
        assert len(store) == 1
        bypass = Engine(store=store, use_cache=False, memory_cache={})
        bypass.run_one(spec)
        assert bypass.stats.simulations == 1
        assert bypass.stats.store_hits == 0

    def test_duplicate_cells_deduplicated_within_batch(
        self, small_config
    ):
        engine = Engine(memory_cache={})
        spec = RunSpec("db", "baseline", small_config)
        results = engine.run(
            [spec, RunSpec("db", "baseline", small_config)]
        ).values()
        assert engine.stats.simulations == 1
        assert engine.stats.deduplicated == 1
        assert results[0] is results[1]

    def test_non_cacheable_cells_always_execute(self, small_config):
        from repro.sim.driver import make_policy

        engine = Engine(memory_cache={})
        spec = RunSpec(
            "db",
            "hotspot",
            small_config,
            policy=make_policy("hotspot", small_config),
        )
        assert not spec.cacheable
        engine.run_one(spec)
        fresh_policy_spec = RunSpec(
            "db",
            "hotspot",
            small_config,
            policy=make_policy("hotspot", small_config),
        )
        engine.run_one(fresh_policy_spec)
        assert engine.stats.simulations == 2
        assert engine.stats.memory_hits == 0

    def test_progress_callback_sees_every_cell(self, small_config):
        events = []
        engine = Engine(
            memory_cache={}, progress=lambda p: events.append(p)
        )
        cells = [
            RunSpec("db", scheme, small_config)
            for scheme in ("baseline", "bbv")
        ]
        engine.run(cells)
        assert [e.done for e in events] == [1, 2]
        assert all(e.total == 2 for e in events)
        assert {e.source for e in events} == {"simulated"}
        engine.run(cells)
        assert [e.done for e in events[2:]] == [1, 2]
        assert {e.source for e in events[2:]} == {"memory"}


class TestRetryAndTimeout:
    def test_flaky_runner_retried(self, small_config):
        calls = {"n": 0}

        def flaky(spec):
            calls["n"] += 1
            if calls["n"] < 3:
                raise RuntimeError("transient")
            return run_benchmark(spec)

        engine = Engine(
            memory_cache={}, runner=flaky, max_retries=2
        )
        result = engine.run_one(RunSpec("db", "baseline", small_config))
        assert result.benchmark == "db"
        assert calls["n"] == 3
        assert engine.stats.retries == 2
        assert engine.stats.simulations == 1

    def test_persistent_failure_raises(self, small_config):
        def broken(spec):
            raise RuntimeError("always broken")

        engine = Engine(memory_cache={}, runner=broken, max_retries=1)
        with pytest.raises(CellExecutionError) as excinfo:
            engine.run_one(RunSpec("db", "baseline", small_config))
        assert excinfo.value.attempts == 2
        assert isinstance(excinfo.value.cause, RuntimeError)

    def test_cell_timeout_counts_and_raises(self, small_config):
        # A 50 ms budget is far below any real simulation.
        engine = Engine(
            memory_cache={}, cell_timeout=0.05, max_retries=0
        )
        with pytest.raises(CellExecutionError) as excinfo:
            engine.run_one(
                RunSpec(
                    "db",
                    "baseline",
                    ExperimentConfig(max_instructions=2_000_000),
                )
            )
        assert isinstance(excinfo.value.cause, CellTimeout)
        assert engine.stats.timeouts == 1


class TestParallelParity:
    def test_jobs2_bitwise_identical_to_serial(self, small_config):
        names = ["db", "jess"]
        serial = run_suite(
            names,
            small_config,
            engine=Engine(use_cache=False, memory_cache={}),
        )
        parallel = run_suite(
            names,
            small_config,
            engine=Engine(jobs=2, use_cache=False, memory_cache={}),
        )
        for name in names:
            for scheme in ("baseline", "bbv", "hotspot"):
                a = getattr(serial.comparisons[name], scheme)
                b = getattr(parallel.comparisons[name], scheme)
                assert a == b
        for builder in (exhibits.figure3, exhibits.figure4,
                        exhibits.table4):
            serial_data = json.dumps(
                builder(serial).data, sort_keys=True
            )
            parallel_data = json.dumps(
                builder(parallel).data, sort_keys=True
            )
            assert serial_data == parallel_data


class TestExperimentFacade:
    def test_cached_run_uses_store_across_memory_clears(
        self, isolated_store, small_config
    ):
        first = cached_run("db", "baseline", small_config)
        assert len(isolated_store) == 1
        clear_memory_cache()
        second = cached_run("db", "baseline", small_config)
        assert second == first

    def test_clear_cache_wipes_both_layers(
        self, isolated_store, small_config
    ):
        cached_run("db", "baseline", small_config)
        assert len(isolated_store) == 1
        clear_cache()
        assert len(isolated_store) == 0

    def test_clear_cache_can_keep_store(
        self, isolated_store, small_config
    ):
        cached_run("db", "baseline", small_config)
        clear_cache(include_store=False)
        assert len(isolated_store) == 1

    def test_compare_schemes_via_engine(
        self, isolated_store, small_config
    ):
        comparison = compare_schemes("db", small_config)
        assert comparison.baseline.scheme == "static"
        assert comparison.bbv.scheme == "bbv"
        assert comparison.hotspot.scheme == "hotspot"
        assert len(isolated_store) == 3

    def test_runspec_shim_equivalent_to_keyword_form(
        self, isolated_store, small_config
    ):
        keyword = run_benchmark("db", "baseline", small_config)
        spec = run_benchmark(RunSpec("db", "baseline", small_config))
        assert keyword == spec

    def test_sweep_parameter_routed_through_engine(
        self, isolated_store, small_config
    ):
        from repro.sim.sweeps import sweep_parameter

        points = sweep_parameter(
            "hot_threshold",
            [3, 5],
            benchmark="db",
            scheme="hotspot",
            base_config=small_config,
            max_instructions=BUDGET,
        )
        assert [p.value for p in points] == [3, 5]
        # 2 values x (scheme + baseline) = 4 cells persisted.
        assert len(isolated_store) == 4
