"""Persistent result store: round-tripping, schema guards, fingerprints.

Covers the store side of the engine redesign: RunResult → JSON →
RunResult equality (including every nested stats dataclass), rejection
of corrupted / future-schema / mismatched entries, the public
``ExperimentConfig.fingerprint()`` regression guarantee (every nested
knob participates), and a two-process cache-hit round trip through a
tmpdir store.
"""

from __future__ import annotations

import dataclasses
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.policy import HotspotPolicyStats
from repro.phases.classifier import PhaseOccurrenceStats
from repro.phases.policy import BBVPolicyStats
from repro.sim.config import ExperimentConfig
from repro.sim.driver import HotspotSummary, RunResult, RunSpec, run_benchmark
from repro.sim.store import STORE_SCHEMA_VERSION, ResultStore

SRC_DIR = str(Path(__file__).resolve().parent.parent / "src")


def make_result(**overrides) -> RunResult:
    """A fully populated RunResult exercising every nested field."""
    fields = dict(
        benchmark="db",
        scheme="hotspot",
        instructions=100_000,
        cycles=150_000.5,
        ipc=0.6667,
        l1d_energy_nj=1234.5,
        l2_energy_nj=987.25,
        l1d_breakdown={"dynamic": 1000.0, "leakage": 200.5, "reconfig": 34.0},
        l2_breakdown={"dynamic": 800.0, "leakage": 180.25, "reconfig": 7.0},
        memory_nj=55.5,
        l1d_miss_rate=0.03,
        l2_miss_rate=0.11,
        branch_mispredict_rate=0.02,
        n_hotspots=2,
        instructions_in_hotspots=60_000,
        hotspot_summaries={
            "work": HotspotSummary(
                name="work",
                invocations=120,
                mean_size=512.5,
                detected_at=4_000,
                pre_hot_instructions=2_000,
            ),
            "cold": HotspotSummary(
                name="cold",
                invocations=3,
                mean_size=99.0,
                detected_at=None,
                pre_hot_instructions=0,
            ),
        },
        hotspot_stats=HotspotPolicyStats(
            hotspots_by_kind={"L1D": 1, "L2": 1},
            managed_hotspots=2,
            tuned_hotspots=1,
            unmanaged_hotspots=1,
            tunings={"L1D": 4, "L2": 2},
            reconfigs={"L1D": 6, "L2": 3},
            denied={"L1D": 1},
            coverage={"L1D": 0.4, "L2": 0.6},
            per_hotspot_ipc_cov=0.05,
            inter_hotspot_ipc_cov=0.2,
            retunes=1,
            early_aborts=1,
            kind_of={"work": "L1D", "cold": "L2"},
            hotspot_mean_ipc={"work": 0.7, "cold": 0.5},
        ),
        bbv_stats=BBVPolicyStats(
            n_phases=3,
            tuned_phases=2,
            intervals_total=40,
            intervals_in_tuned_phases=25,
            per_phase_ipc_cov=0.04,
            inter_phase_ipc_cov=0.18,
            tunings={"L1D": 5, "L2": 1},
            reconfigs={"L1D": 9, "L2": 2},
            safety_reconfigs={"L1D": 1},
            coverage={"L1D": 0.5, "L2": 0.5},
            occurrence_stats=PhaseOccurrenceStats(
                stable_intervals=30,
                transitional_intervals=10,
                occurrences=5,
                stable_occurrences=3,
            ),
            discarded_trials=2,
            predicted_applications=0,
            prediction_accuracy=None,
        ),
        applied_reconfigurations={"L1D": 6, "L2": 3},
        denied_reconfigurations={"L1D": 1},
        gc_invocations=7,
    )
    fields.update(overrides)
    return RunResult(**fields)


class TestRoundTrip:
    def test_synthetic_result_round_trips_exactly(self):
        result = make_result()
        payload = json.loads(json.dumps(result.to_dict()))
        restored = RunResult.from_dict(payload)
        assert restored == result
        assert isinstance(
            restored.hotspot_summaries["work"], HotspotSummary
        )
        assert isinstance(restored.hotspot_stats, HotspotPolicyStats)
        assert isinstance(restored.bbv_stats, BBVPolicyStats)
        assert isinstance(
            restored.bbv_stats.occurrence_stats, PhaseOccurrenceStats
        )

    def test_none_stats_round_trip(self):
        result = make_result(hotspot_stats=None, bbv_stats=None)
        assert RunResult.from_dict(result.to_dict()) == result

    @pytest.mark.parametrize("scheme", ["bbv", "hotspot"])
    def test_real_run_round_trips_through_store(self, tmp_path, scheme):
        config = ExperimentConfig(max_instructions=60_000)
        result = run_benchmark("db", scheme, config)
        store = ResultStore(tmp_path)
        fingerprint = config.fingerprint()
        store.put("db", scheme, fingerprint, result)
        restored = store.get("db", scheme, fingerprint)
        assert restored == result

    def test_unknown_result_field_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        fingerprint = ExperimentConfig().fingerprint()
        path = store.put("db", "hotspot", fingerprint, make_result())
        payload = json.loads(path.read_text())
        payload["result"]["field_from_the_future"] = 1
        path.write_text(json.dumps(payload))
        assert store.get("db", "hotspot", fingerprint) is None


class TestSchemaGuards:
    def setup_entry(self, tmp_path):
        store = ResultStore(tmp_path)
        fingerprint = ExperimentConfig().fingerprint()
        path = store.put("db", "hotspot", fingerprint, make_result())
        return store, fingerprint, path

    def test_future_schema_version_rejected(self, tmp_path):
        store, fingerprint, path = self.setup_entry(tmp_path)
        payload = json.loads(path.read_text())
        payload["schema"] = STORE_SCHEMA_VERSION + 1
        path.write_text(json.dumps(payload))
        assert store.get("db", "hotspot", fingerprint) is None

    def test_corrupted_json_rejected(self, tmp_path):
        store, fingerprint, path = self.setup_entry(tmp_path)
        path.write_text(path.read_text()[:50])
        assert store.get("db", "hotspot", fingerprint) is None

    def test_fingerprint_mismatch_rejected(self, tmp_path):
        store, fingerprint, path = self.setup_entry(tmp_path)
        payload = json.loads(path.read_text())
        payload["fingerprint"] = "0" * 64
        path.write_text(json.dumps(payload))
        assert store.get("db", "hotspot", fingerprint) is None

    def test_missing_entry_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.get("db", "hotspot", "f" * 64) is None

    def test_clear_removes_entries(self, tmp_path):
        store, fingerprint, _ = self.setup_entry(tmp_path)
        assert len(store) == 1
        stats = store.clear()
        assert stats.entries == 1
        assert stats.tmp == 0
        assert stats.corrupt == 0
        assert stats.total == 1
        assert len(store) == 0
        assert store.get("db", "hotspot", fingerprint) is None


# ---------------------------------------------------------------------------
# Fingerprint regression: every nested knob participates
# ---------------------------------------------------------------------------


def leaf_paths(obj, prefix=()):
    """Dotted paths to every primitive leaf of a config dataclass tree."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        for f in dataclasses.fields(obj):
            yield from leaf_paths(getattr(obj, f.name), prefix + (f.name,))
    else:
        yield prefix, obj


def mutated_leaf(value):
    """A different-but-valid value for a config leaf."""
    if isinstance(value, bool):
        return not value
    if isinstance(value, int):
        return value + 1
    if isinstance(value, float):
        return value + 0.001
    if isinstance(value, str):
        swaps = {
            "energy": "edp",
            "edp": "energy",
            "selective": "flush",
            "flush": "selective",
            "fast": "reference",
            "reference": "fast",
            "shared": "split",
            "split": "shared",
        }
        return swaps.get(value, value + "x")
    if isinstance(value, tuple):
        return value[:-1] if len(value) > 1 else value + value
    if value is None:
        return 1
    raise TypeError(f"unexpected leaf type: {value!r}")


def replaced(obj, path, new_leaf):
    """Rebuild a (possibly frozen) dataclass tree with one leaf changed."""
    if not path:
        return new_leaf
    name = path[0]
    child = replaced(getattr(obj, name), path[1:], new_leaf)
    return dataclasses.replace(obj, **{name: child})


class TestFingerprint:
    def test_stable_across_equal_configs(self):
        assert (
            ExperimentConfig().fingerprint()
            == ExperimentConfig().fingerprint()
        )

    def test_every_nested_knob_changes_the_fingerprint(self):
        base = ExperimentConfig()
        base_fingerprint = base.fingerprint()
        paths = list(leaf_paths(base))
        # The walk must reach deep into the tree (machine geometry,
        # timing, energy specs, tuning, BBV) — a shrinking leaf count
        # would mean the structural hash lost coverage.
        assert len(paths) >= 40
        seen = {base_fingerprint}
        for path, value in paths:
            mutated = replaced(base, path, mutated_leaf(value))
            fingerprint = mutated.fingerprint()
            dotted = ".".join(path)
            assert fingerprint != base_fingerprint, (
                f"mutating {dotted} did not change the fingerprint"
            )
            assert fingerprint not in seen, (
                f"mutating {dotted} collided with another mutation"
            )
            seen.add(fingerprint)

    def test_formerly_omitted_knobs_now_participate(self):
        # Regression for the old hand-written tuple fingerprint, which
        # silently omitted these (stale cache hits were possible).
        base = ExperimentConfig()
        cases = [
            ("tuning", "measurements_per_trial"),
            ("tuning", "min_measurable_instructions"),
            ("machine", "l1d", "line_size"),
            ("machine", "l2", "associativity"),
            ("machine", "timing", "memory_latency"),
            ("machine", "l1d_energy", "writeback_line_nj"),
            ("bbv", "counter_bits"),
        ]
        for path in cases:
            leaf = base
            for name in path:
                leaf = getattr(leaf, name)
            mutated = replaced(base, path, mutated_leaf(leaf))
            assert mutated.fingerprint() != base.fingerprint(), path

    def test_sim_kernel_participates_in_the_fingerprint(self):
        """Regression for the fast-kernel rollout: results computed by
        the two kernels are bit-identical, but they must still never
        collide in the persistent store — a divergence bug found later
        would otherwise let one kernel serve the other's cached cells."""
        fast = ExperimentConfig(sim_kernel="fast")
        reference = ExperimentConfig(sim_kernel="reference")
        assert fast.fingerprint() != reference.fingerprint()
        # The kernel choice does not affect *cacheability* — both are
        # deterministic simulations fully described by their config.
        assert RunSpec("db", "baseline", fast).cacheable
        assert RunSpec("db", "baseline", reference).cacheable
        assert RunSpec("db", "baseline", fast).cache_key() != (
            RunSpec("db", "baseline", reference).cache_key()
        )

    def test_effective_fingerprint_folds_budget_override(self):
        config = ExperimentConfig(max_instructions=100_000)
        spec = RunSpec("db", "baseline", config)
        override = RunSpec(
            "db", "baseline", config, max_instructions=50_000
        )
        folded = RunSpec(
            "db", "baseline", ExperimentConfig(max_instructions=50_000)
        )
        assert spec.effective_fingerprint() != (
            override.effective_fingerprint()
        )
        assert (
            override.effective_fingerprint()
            == folded.effective_fingerprint()
        )


# ---------------------------------------------------------------------------
# Two-process cache hit through a tmpdir store
# ---------------------------------------------------------------------------

TWO_PROCESS_SCRIPT = """
import sys
from repro.sim.config import ExperimentConfig
from repro.sim.experiment import make_engine, run_suite, set_default_store
from repro.sim.store import ResultStore

set_default_store(ResultStore(sys.argv[1]))
config = ExperimentConfig(max_instructions=60_000)
engine = make_engine()
run_suite(["db"], config, engine=engine)
print("SIMULATIONS", engine.stats.simulations)
print("STORE_HITS", engine.stats.store_hits)
"""


def run_fresh_process(store_dir) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [SRC_DIR]
        + [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p]
    )
    completed = subprocess.run(
        [sys.executable, "-c", TWO_PROCESS_SCRIPT, str(store_dir)],
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
    )
    assert completed.returncode == 0, completed.stderr
    counters = {}
    for line in completed.stdout.splitlines():
        parts = line.split()
        if len(parts) == 2 and parts[1].isdigit():
            counters[parts[0]] = int(parts[1])
    return counters


class TestTwoProcessStoreHit:
    def test_second_process_runs_zero_simulations(self, tmp_path):
        first = run_fresh_process(tmp_path)
        assert first["SIMULATIONS"] == 3
        assert first["STORE_HITS"] == 0
        second = run_fresh_process(tmp_path)
        assert second["SIMULATIONS"] == 0
        assert second["STORE_HITS"] == 3


# ---------------------------------------------------------------------------
# Concurrent writers: atomic replace keeps every reader valid
# ---------------------------------------------------------------------------

CONCURRENT_WRITER_SCRIPT = """
import sys
from repro.sim.config import ExperimentConfig
from repro.sim.driver import RunSpec, execute
from repro.sim.store import ResultStore

store = ResultStore(sys.argv[1])
spec = RunSpec("db", "baseline", ExperimentConfig(max_instructions=60_000))
key = spec.cache_key()
result = execute(spec)
# Hammer the same key while the sibling process does the same; every
# interleaved get() must see a complete entry (atomic replace), never a
# torn write.
for round in range(25):
    store.put(*key, result)
    loaded = store.get(*key)
    assert loaded is not None, f"torn read in round {round}"
    assert loaded == result
assert store.quarantined == 0
print("WRITER_OK", sys.argv[2])
"""


class TestConcurrentWriters:
    def test_same_key_writers_never_tear_each_other(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [SRC_DIR]
            + [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p]
        )
        writers = [
            subprocess.Popen(
                [
                    sys.executable, "-c", CONCURRENT_WRITER_SCRIPT,
                    str(tmp_path), str(index),
                ],
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
                env=env,
            )
            for index in range(2)
        ]
        for index, writer in enumerate(writers):
            out, err = writer.communicate(timeout=300)
            assert writer.returncode == 0, err
            assert f"WRITER_OK {index}" in out
        # Whichever replace landed last, the surviving entry is valid
        # and there is no .tmp debris or quarantined damage behind.
        store = ResultStore(tmp_path)
        spec = RunSpec(
            "db", "baseline", ExperimentConfig(max_instructions=60_000)
        )
        assert store.get(*spec.cache_key()) is not None
        assert store.stale_tmp_files() == []
        assert store.corrupt_files() == []
        assert len(store) == 1
