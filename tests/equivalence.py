"""Differential-equivalence harness: reference kernel vs fast kernel.

The fast kernel (``sim_kernel="fast"``) is only allowed to exist because
it is *bit-identical* to the readable reference interpreter — same RNG
stream, same float operation order, same adaptation decisions.  This
module is the shared machinery that proves it for one experiment cell:

* :func:`run_cell` executes one (benchmark, scheme, config, fault plan)
  cell under a chosen kernel with a live telemetry session;
* :func:`simulated_timeline` projects the telemetry log onto its
  deterministic, simulated-clock part (wall-clock events are real time
  and legitimately differ between runs);
* :func:`first_divergence` walks two JSON-like trees and names the first
  leaf where they disagree;
* :func:`assert_equivalent` asserts full :class:`RunResult` equality and
  timeline equality, rendering the first divergence readably — the
  failure message is the debugging entry point, so it shows *where* the
  kernels split (metric path or event index), not just that they did.

Used by ``tests/test_kernel_equivalence.py`` (the grid), the golden-trace
suite, and the property tests.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple, Union

from repro.faults.plan import FaultPlan
from repro.obs.events import Telemetry
from repro.sim.config import ExperimentConfig
from repro.sim.driver import KERNEL_REGISTRY, RunResult, RunSpec, execute

# The exact-diff helpers moved to tests/tolerances.py (shared with the
# statistical harness); re-exported here for existing callers.
from tests.tolerances import describe_divergence, first_divergence  # noqa: F401

#: The bit-identical kernel names, reference first (the spec comes
#: first).  Derived from the authoritative registry so a new kernel is
#: automatically either proven here or explicitly registered as
#: tolerance-gated (``bit_identical=False`` — e.g. ``turbo``, which is
#: gated by ``tests/stat_equivalence.py`` and never enters this
#: harness).
KERNELS = tuple(
    sorted(
        (
            name
            for name, spec in KERNEL_REGISTRY.items()
            if spec.bit_identical
        ),
        key=lambda name: name != "reference",
    )
)


def run_cell(
    benchmark: str,
    scheme: str,
    kernel: str,
    max_instructions: int = 250_000,
    config_kwargs: Optional[Dict[str, object]] = None,
    fault_spec: Optional[str] = None,
) -> Tuple[RunResult, Telemetry]:
    """Execute one cell under ``kernel``; returns (result, telemetry).

    ``config_kwargs`` are extra :class:`ExperimentConfig` fields (e.g. a
    customised ``machine``); ``fault_spec`` is a
    :meth:`FaultPlan.from_spec` string for fault-injected cells.
    """
    config = ExperimentConfig(
        max_instructions=max_instructions,
        sim_kernel=kernel,
        **(config_kwargs or {}),
    )
    telemetry = Telemetry()
    fault_plan = FaultPlan.from_spec(fault_spec) if fault_spec else None
    result = execute(
        RunSpec(benchmark=benchmark, scheme=scheme, config=config),
        telemetry=telemetry,
        fault_plan=fault_plan,
    )
    return result, telemetry


def result_tree(result: RunResult) -> Dict[str, object]:
    """``RunResult`` as a plain JSON tree (tuples become lists)."""
    return json.loads(json.dumps(result.to_dict(), sort_keys=True))


def simulated_timeline(telemetry: Telemetry) -> List[Tuple]:
    """The deterministic projection of a telemetry session.

    Simulated-clock events only — name, instruction timestamp, track,
    duration, and sorted args.  Wall-clock events (engine scheduling) are
    stamped with real time and are excluded: two equivalent runs differ
    there by construction.
    """
    timeline = []
    for event in telemetry.log:
        if event.wall_clock:
            continue
        timeline.append(
            (
                event.name,
                event.ts,
                event.track,
                event.dur,
                tuple(sorted(event.args.items())),
            )
        )
    return timeline


def decision_timeline(telemetry: Telemetry) -> List[Tuple]:
    """Like :func:`simulated_timeline`, without the per-invocation
    ``hotspot_invoke`` spans (thousands per run; the golden fixtures pin
    their *count*, the grid tests still compare them one by one)."""
    return [
        event
        for event in simulated_timeline(telemetry)
        if event[0] != "hotspot_invoke"
    ]


def round_floats(tree: object, significant: int = 12) -> object:
    """Copy of a JSON tree with floats rounded to ``significant`` digits.

    Golden fixtures use this on both sides of the comparison: the
    simulation's arithmetic is deterministic, but ``math.*`` calls go
    through the platform's libm, whose last ulp may differ between CI
    images.  12 significant digits is far below any behavioural change
    and far above libm jitter.
    """
    if isinstance(tree, float):
        return float(f"{tree:.{significant}g}")
    if isinstance(tree, dict):
        return {k: round_floats(v, significant) for k, v in tree.items()}
    if isinstance(tree, (list, tuple)):
        return [round_floats(v, significant) for v in tree]
    return tree


def pinned_configurations(telemetry: Telemetry) -> List[Tuple]:
    """(owner/track, ts, args) of every ``config_pinned`` decision."""
    return [
        (event.track, event.ts, tuple(sorted(event.args.items())))
        for event in telemetry.log.by_name("config_pinned")
    ]


def assert_equivalent(
    cell: str,
    ref: Union[RunResult, Dict[str, object]],
    fast: Union[RunResult, Dict[str, object]],
    ref_telemetry: Optional[Telemetry] = None,
    fast_telemetry: Optional[Telemetry] = None,
) -> None:
    """Assert full result (and, if given, timeline) equality.

    Raises ``AssertionError`` whose message names the first diverging
    metric path or event index — the readable diff the harness promises.
    """
    ref_tree = result_tree(ref) if isinstance(ref, RunResult) else ref
    fast_tree = result_tree(fast) if isinstance(fast, RunResult) else fast
    if ref_tree != fast_tree:
        hit = first_divergence(ref_tree, fast_tree)
        assert hit is not None, "trees differ but no leaf divergence found"
        raise AssertionError(describe_divergence(cell, "RunResult", hit))
    if ref_telemetry is None or fast_telemetry is None:
        return
    ref_events = simulated_timeline(ref_telemetry)
    fast_events = simulated_timeline(fast_telemetry)
    for index, (event_a, event_b) in enumerate(zip(ref_events, fast_events)):
        if event_a != event_b:
            raise AssertionError(
                describe_divergence(
                    cell, f"tuning event [{index}]", ("event", event_a, event_b)
                )
            )
    if len(ref_events) != len(fast_events):
        longer = "reference" if len(ref_events) > len(fast_events) else "fast"
        extra = (ref_events if longer == "reference" else fast_events)[
            min(len(ref_events), len(fast_events))
        ]
        raise AssertionError(
            f"{cell}: event timelines differ in length "
            f"(reference={len(ref_events)}, fast={len(fast_events)}); "
            f"first extra {longer} event: {extra!r}"
        )
    assert pinned_configurations(ref_telemetry) == pinned_configurations(
        fast_telemetry
    ), f"{cell}: pinned configurations differ"


def assert_cell_equivalent(
    benchmark: str,
    scheme: str,
    max_instructions: int = 250_000,
    config_kwargs: Optional[Dict[str, object]] = None,
    fault_spec: Optional[str] = None,
) -> RunResult:
    """Run one cell under every bit-identical kernel and assert they
    cannot be told apart; returns the (shared) result for further
    assertions."""
    ref, ref_telemetry = run_cell(
        benchmark, scheme, KERNELS[0],
        max_instructions, config_kwargs, fault_spec,
    )
    fast = ref
    for kernel in KERNELS[1:]:
        fast, fast_telemetry = run_cell(
            benchmark, scheme, kernel,
            max_instructions, config_kwargs, fault_spec,
        )
        cell = f"{benchmark}/{scheme}@{max_instructions}[{kernel}]" + (
            f"+faults[{fault_spec}]" if fault_spec else ""
        )
        assert_equivalent(cell, ref, fast, ref_telemetry, fast_telemetry)
    return fast
